"""The flow-level simulator.

Flows are admitted at their start time, share link bandwidth max-min
fairly with all other active flows, and complete when their bytes drain.
Rates are re-solved at every arrival/completion event, which reproduces
the fluid limit of per-flow-fair TCP (what the paper's packet simulator
approximates).

**Aggregation trees.**  An on-path aggregation job is a tree of *segment
flows*: worker->box segments carry full partial results, box->box and
box->master segments carry α-scaled data.  A segment's ``children`` are
the flows it depends on: the segment is *admitted* (starts transferring)
only once every child has drained -- a box cannot forward an aggregate it
has not computed.  Per-flow FCT is the flow's own transfer time
(completion minus admission), matching how a packet-level simulator would
measure each flow; upstream waits serialise *job* completion without
contaminating downstream flows' FCTs.

Agg-box processing capacity appears as a virtual link on the path of each
segment *entering* the box, so a box shared by many segments rate-limits
them exactly like a wire would.

**Fault events.**  Two kinds of scheduled events let the fault-injection
layer (:mod:`repro.faults`) perturb a run deterministically:

- a :class:`CapacityEvent` changes a link's capacity at a virtual time;
  capacity ``0`` means *down* -- flows whose current path crosses a down
  link drop out of the max-min rate solve (they make no progress) until
  the link recovers or they are rerouted;
- a :class:`RerouteEvent` moves a flow's remaining bytes onto a new path
  (the §3.1 rewiring of segment flows around a failed agg box).  Bytes
  already transferred are accounted to the old path, the remainder to
  the new one.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.netsim.incremental import IncrementalMaxMin, SolverStats
from repro.netsim.network import Network
from repro.netsim.vectorized import (
    HAVE_NUMPY,
    SOLVER_BACKENDS,
    VectorizedMaxMin,
    make_solver,
    _np,
)
from repro.obs import LINK_UTIL_PREFIX, METRICS, get_tracer
from repro.units import EPSILON

#: Registry names the simulator writes (the ``netsim.*`` namespace).
_SOLVER_METRICS = (
    ("solves", "netsim.solver.solves"),
    ("cache_hits", "netsim.solver.cache_hits"),
    ("components_resolved", "netsim.solver.components_resolved"),
    ("flows_resolved", "netsim.solver.flows_resolved"),
    ("flows_reused", "netsim.solver.flows_reused"),
)


class SimCounters:
    """Deprecated facade over the ``netsim.*`` metrics in
    :data:`repro.obs.METRICS`.

    PR 2's benchmark harness read module-wide work counters from this
    class; the unified observability layer moved the storage into the
    metrics registry.  The facade keeps ``COUNTERS.reset()`` /
    ``COUNTERS.snapshot()`` (and the attribute reads) working while
    callers migrate to ``METRICS.snapshot("netsim.")``.
    """

    @property
    def runs(self) -> int:
        return METRICS.counter("netsim.runs").value

    @property
    def flows(self) -> int:
        return METRICS.counter("netsim.flows").value

    @property
    def events(self) -> int:
        return METRICS.counter("netsim.events").value

    @property
    def epochs(self) -> int:
        return METRICS.counter("netsim.epochs").value

    @property
    def solver(self) -> SolverStats:
        return SolverStats(**{
            attr: METRICS.counter(name).value
            for attr, name in _SOLVER_METRICS
        })

    def reset(self) -> None:
        METRICS.reset("netsim.")

    def snapshot(self) -> Dict[str, int]:
        solver = self.solver
        return {
            "runs": self.runs,
            "flows": self.flows,
            "events": self.events,
            "epochs": self.epochs,
            "solver_calls": solver.solves,
            "solver_cache_hits": solver.cache_hits,
            "components_resolved": solver.components_resolved,
            "flows_resolved": solver.flows_resolved,
            "flows_reused": solver.flows_reused,
        }


#: Legacy global counter view; prefer ``METRICS.snapshot("netsim.")``.
COUNTERS = SimCounters()


@dataclass(frozen=True)
class FlowSpec:
    """One flow to simulate.

    Attributes:
        flow_id: unique id.
        size: bytes to transfer (>= 0; zero-byte flows finish instantly).
        path: link ids traversed, in order.  May be empty for co-located
            endpoints (the flow then finishes instantly unless rate-capped).
        start_time: virtual time at which the flow becomes active.
        job_id: optional grouping key (one partition/aggregation job).
        kind: free-form label -- the strategies use ``"worker"``,
            ``"internal"`` (box->box / relay hops), ``"result"`` (last hop
            into the master) and ``"background"``.
        aggregatable: True when the flow belongs to aggregatable traffic
            (used to split Figs. 6 and 7).
        children: flow ids that must drain before this flow is admitted
            (an aggregate cannot be forwarded before its inputs arrive).
        rate_cap: optional per-flow rate ceiling in bytes/second.
    """

    flow_id: str
    size: float
    path: Tuple[str, ...] = ()
    start_time: float = 0.0
    job_id: Optional[str] = None
    kind: str = "background"
    aggregatable: bool = False
    children: Tuple[str, ...] = ()
    rate_cap: Optional[float] = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"flow {self.flow_id!r} has negative size")
        if self.start_time < 0:
            raise ValueError(f"flow {self.flow_id!r} starts before t=0")
        if self.rate_cap is not None and self.rate_cap <= 0:
            raise ValueError(f"flow {self.flow_id!r} has non-positive cap")


@dataclass(frozen=True)
class CapacityEvent:
    """Scheduled change of one link's capacity (0 = link down)."""

    when: float
    link_id: str
    capacity: float

    def __post_init__(self) -> None:
        if self.when < 0:
            raise ValueError("capacity events cannot predate t=0")
        if self.capacity < 0:
            raise ValueError("capacity must be >= 0 (0 = down)")


@dataclass(frozen=True)
class RerouteEvent:
    """Scheduled path change: remaining bytes continue on ``path``."""

    when: float
    flow_id: str
    path: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.when < 0:
            raise ValueError("reroute events cannot predate t=0")


@dataclass
class FlowRecord:
    """Outcome of one simulated flow."""

    spec: FlowSpec
    drain_time: float
    #: When the flow actually started transferring: its start time, or
    #: later if it waited for dependency children to drain.
    admitted_time: float = 0.0

    @property
    def completion_time(self) -> float:
        """When the flow's last byte arrived."""
        return self.drain_time

    @property
    def fct(self) -> float:
        """Flow completion time: the flow's own transfer duration."""
        return self.drain_time - self.admitted_time

    @property
    def dependency_wait(self) -> float:
        """Seconds the flow waited for upstream flows before starting."""
        return self.admitted_time - self.spec.start_time


@dataclass
class SimulationResult:
    """All per-flow records plus the network with its byte accounting."""

    records: Dict[str, FlowRecord]
    network: Network
    end_time: float

    def fcts(
        self,
        kinds: Optional[Sequence[str]] = None,
        aggregatable: Optional[bool] = None,
    ) -> List[float]:
        """FCTs of flows matching the filters (all flows by default)."""
        out = []
        for record in self.records.values():
            spec = record.spec
            if kinds is not None and spec.kind not in kinds:
                continue
            if aggregatable is not None and spec.aggregatable != aggregatable:
                continue
            out.append(record.fct)
        return out

    def job_completion_times(self) -> Dict[str, float]:
        """Job id -> time when its last flow completed."""
        jobs: Dict[str, float] = {}
        for record in self.records.values():
            job_id = record.spec.job_id
            if job_id is None:
                continue
            current = jobs.get(job_id, 0.0)
            jobs[job_id] = max(current, record.completion_time)
        return jobs

    def link_traffic(self, wire_only: bool = True) -> Dict[str, float]:
        """Link id -> cumulative bytes carried (Fig. 9's metric)."""
        links = self.network.wire_links() if wire_only else iter(self.network)
        return {link.link_id: link.bytes_carried for link in links}


class FlowSim:
    """Simulate a set of flows over a :class:`Network` to completion.

    ``label`` names the run in traces (the planning strategy, usually);
    it lands on the ``flowsim.run`` span so multi-run traces stay
    attributable.  ``link_sample_period`` throttles the traced per-link
    utilization counter tracks: ``None`` (the default) emits a sample at
    every rate epoch where a link's utilization changed, a positive
    period additionally caps each link's track at one sample per period
    (coarser timelines, smaller traces).  Sampling only happens under an
    enabled tracer.

    ``solver`` selects the max-min backend: ``"vectorized"`` (numpy),
    ``"incremental"`` (pure Python) or ``"auto"`` (the default:
    vectorized when numpy is importable, incremental otherwise).  With
    the vectorized backend and no enabled tracer, the per-epoch loop
    (rate lookups, byte draining, completion detection) also runs as
    array operations over the solver's flow slots.
    """

    def __init__(self, network: Network, label: str = "",
                 link_sample_period: Optional[float] = None,
                 solver: str = "auto") -> None:
        if link_sample_period is not None and link_sample_period < 0:
            raise ValueError("link_sample_period must be >= 0 (or None)")
        if solver not in SOLVER_BACKENDS:
            raise ValueError(
                f"unknown solver backend {solver!r}; "
                f"choose from {SOLVER_BACKENDS}")
        if solver == "vectorized" and not HAVE_NUMPY:
            raise RuntimeError(
                "solver='vectorized' requires numpy (pip install .[fast]); "
                "use solver='auto' for the automatic fallback")
        self._network = network
        self._label = label
        self._link_sample_period = link_sample_period
        self._solver_backend = solver
        self._specs: Dict[str, FlowSpec] = {}
        self._cap_events: List[CapacityEvent] = []
        self._reroute_events: List[RerouteEvent] = []

    @property
    def network(self) -> Network:
        return self._network

    def spec(self, flow_id: str) -> FlowSpec:
        """The registered spec for ``flow_id`` (KeyError if unknown)."""
        return self._specs[flow_id]

    def flow_ids(self) -> List[str]:
        return sorted(self._specs)

    def add_capacity_event(self, when: float, link_id: str,
                           capacity: float) -> None:
        """Schedule a link capacity change (0 = down) at virtual time."""
        if link_id not in self._network:
            raise KeyError(f"capacity event on unknown link {link_id!r}")
        self._cap_events.append(CapacityEvent(when=when, link_id=link_id,
                                              capacity=capacity))

    def add_reroute_event(self, when: float, flow_id: str,
                          path: Sequence[str]) -> None:
        """Schedule a flow's remaining bytes onto a new path."""
        if flow_id not in self._specs:
            raise KeyError(f"reroute event for unknown flow {flow_id!r}")
        for link_id in path:
            if link_id not in self._network:
                raise KeyError(
                    f"reroute of {flow_id!r} uses unknown link {link_id!r}"
                )
        self._reroute_events.append(RerouteEvent(when=when, flow_id=flow_id,
                                                 path=tuple(path)))

    def add_flow(self, spec: FlowSpec) -> None:
        """Register a flow; validates path links and id uniqueness."""
        if spec.flow_id in self._specs:
            raise ValueError(f"duplicate flow id {spec.flow_id!r}")
        for link_id in spec.path:
            if link_id not in self._network:
                raise KeyError(
                    f"flow {spec.flow_id!r} uses unknown link {link_id!r}"
                )
        self._specs[spec.flow_id] = spec

    def add_flows(self, specs: Iterable[FlowSpec]) -> None:
        for spec in specs:
            self.add_flow(spec)

    def run(self) -> SimulationResult:
        """Run to completion and return per-flow records.

        The hot path keeps one max-min solver alive for the whole run:
        admissions, completions, capacity changes and reroutes mutate
        its state, and every event that lands on one virtual timestamp
        is coalesced into a single rate epoch (one solver consult;
        ``netsim.events`` counts the individual events,
        ``netsim.epochs`` the solves-plus-cache-hits).  Flows whose
        current path crosses a down link are parked in ``stalled`` (and
        removed from the solver) via a per-link index instead of a
        per-epoch scan.  With the vectorized solver and no tracer the
        per-epoch byte draining runs over the solver's slot arrays.
        """
        self._validate_dependencies()
        METRICS.counter("netsim.runs").inc()
        METRICS.counter("netsim.flows").inc(len(self._specs))
        n_events = 0   # admissions + completions + fault events applied
        n_epochs = 0   # rate epochs (one solver consult each)
        tracer = get_tracer()
        traced = tracer.enabled
        capacities = dict(self._network.capacities())
        solver = make_solver(capacities, self._solver_backend)
        fast = isinstance(solver, VectorizedMaxMin) and not traced
        run_span = tracer.begin(
            "flowsim.run", 0.0, layer="netsim",
            flows=len(self._specs), links=len(capacities),
            strategy=self._label,
        ) if traced else 0
        #: Per-link utilization sampling state (traced runs only).
        wire_ids: Tuple[str, ...] = ()
        last_util: Dict[str, float] = {}
        last_sampled: Dict[str, float] = {}
        if traced:
            wire_ids = tuple(
                link.link_id for link in self._network.wire_links()
            )
        #: Current path per flow; reroute events replace entries.
        paths: Dict[str, Tuple[str, ...]] = {
            flow_id: spec.path for flow_id, spec in self._specs.items()
        }
        #: Bytes already charged to a (previous) path per rerouted flow.
        accounted: Dict[str, float] = {}

        # Fault events, time-ordered with a stable tie-break (capacity
        # changes before reroutes at equal times, then insertion order).
        events: List[Tuple[float, int, object]] = sorted(
            [(e.when, i, e) for i, e in enumerate(self._cap_events)]
            + [(e.when, len(self._cap_events) + i, e)
               for i, e in enumerate(self._reroute_events)],
            key=lambda item: (item[0], item[1]),
        )
        event_i = 0

        # Dependency bookkeeping: a flow is *armed* once every child has
        # drained; an armed flow is admitted at max(start_time, arm time).
        blockers: Dict[str, int] = {}
        dependents: Dict[str, List[str]] = {}
        for flow_id, spec in self._specs.items():
            blockers[flow_id] = len(spec.children)
            for child in spec.children:
                dependents.setdefault(child, []).append(flow_id)

        pending: List[Tuple[float, str]] = []
        for flow_id, spec in self._specs.items():
            if blockers[flow_id] == 0:
                heapq.heappush(pending, (spec.start_time, flow_id))
        remaining: Dict[str, float] = {}
        records: Dict[str, FlowRecord] = {}
        now = 0.0

        #: Fast-path state: transferring bytes live in per-slot arrays
        #: (indexed by the vectorized solver's slots); stalled flows'
        #: bytes are parked in ``parked`` while they are out of the
        #: solve.  ``remaining`` stays empty in fast mode.
        rem_arr = thr_arr = live_arr = None
        slot_fid: Dict[int, str] = {}
        fid_slot: Dict[str, int] = {}
        parked: Dict[str, float] = {}
        if fast:
            rem_arr = _np.zeros(256)
            thr_arr = _np.zeros(256)
            live_arr = _np.zeros(256, dtype=bool)

        def _ensure(slot: int) -> None:
            nonlocal rem_arr, thr_arr, live_arr
            n = len(rem_arr)
            if slot < n:
                return
            new = max(slot + 1, 2 * n)
            grown = _np.zeros(new)
            grown[:n] = rem_arr
            rem_arr = grown
            grown = _np.zeros(new)
            grown[:n] = thr_arr
            thr_arr = grown
            grown_b = _np.zeros(new, dtype=bool)
            grown_b[:n] = live_arr
            live_arr = grown_b

        def solver_add(flow_id: str) -> None:
            """Enter a flow into the rate solve (admission/unstall)."""
            slot = solver.add_flow(flow_id, paths[flow_id],
                                   rate_cap=self._specs[flow_id].rate_cap)
            if fast:
                _ensure(slot)
                rem_arr[slot] = parked.pop(flow_id)
                thr_arr[slot] = EPSILON * max(
                    1.0, self._specs[flow_id].size)
                live_arr[slot] = True
                slot_fid[slot] = flow_id
                fid_slot[flow_id] = slot

        def solver_drop(flow_id: str, park: bool) -> None:
            """Take a flow out of the rate solve (stall/finish)."""
            if fast:
                slot = fid_slot.pop(flow_id)
                if park:
                    parked[flow_id] = float(rem_arr[slot])
                live_arr[slot] = False
                del slot_fid[slot]
            solver.remove_flow(flow_id)

        def transferring(flow_id: str) -> bool:
            if fast:
                return flow_id in fid_slot or flow_id in parked
            return flow_id in remaining

        def remaining_of(flow_id: str) -> float:
            if fast:
                got = parked.get(flow_id)
                return float(rem_arr[fid_slot[flow_id]]) \
                    if got is None else got
            return remaining[flow_id]

        #: Links currently at zero capacity, and the per-link index of
        #: admitted-but-unfinished flows used to find who a capacity or
        #: reroute event touches without scanning every active flow.
        down_links: Set[str] = {
            link_id for link_id, cap in capacities.items() if cap <= 0.0
        }
        link_flows: Dict[str, Set[str]] = {}
        stalled: Set[str] = set()

        def attach(flow_id: str) -> None:
            """Register a transferring flow with the indexes + solver."""
            path = paths[flow_id]
            for link_id in set(path):
                link_flows.setdefault(link_id, set()).add(flow_id)
            if down_links and any(l in down_links for l in path):
                stalled.add(flow_id)
            else:
                solver_add(flow_id)

        def detach(flow_id: str, park: bool = True) -> None:
            for link_id in set(paths[flow_id]):
                users = link_flows.get(link_id)
                if users is not None:
                    users.discard(flow_id)
            if flow_id in stalled:
                stalled.discard(flow_id)
            elif flow_id in solver:
                solver_drop(flow_id, park)

        def drain(flow_id: str, when: float, admitted: float) -> None:
            nonlocal n_events
            n_events += 1
            records[flow_id] = FlowRecord(
                spec=self._specs[flow_id], drain_time=when,
                admitted_time=admitted,
            )
            if traced:
                # One completed span per flow over its transfer window
                # [admitted, drained].  Flows overlap freely, so they
                # live on their own layer row (outside the LIFO stack)
                # and link to the run span explicitly.  The tags carry
                # the request/job DAG (children, path) the critical-path
                # extractor reconstructs.
                spec = self._specs[flow_id]
                tracer.complete(
                    "flow", admitted, when, layer="netsim.flow",
                    parent_id=run_span,
                    flow=flow_id, job=spec.job_id or "", kind=spec.kind,
                    size=spec.size, wait=admitted - spec.start_time,
                    path="|".join(paths[flow_id]),
                    children="|".join(spec.children),
                )
            for parent in dependents.get(flow_id, ()):
                blockers[parent] -= 1
                if blockers[parent] == 0:
                    start = max(self._specs[parent].start_time, when)
                    heapq.heappush(pending, (start, parent))

        def admit(until: float) -> None:
            """Admit armed flows whose admission time has arrived."""
            nonlocal n_events
            while pending and pending[0][0] <= until + EPSILON:
                when, flow_id = heapq.heappop(pending)
                n_events += 1
                spec = self._specs[flow_id]
                admitted = max(when, spec.start_time)
                if spec.size <= 0 or (not paths[flow_id] and
                                      spec.rate_cap is None):
                    drain(flow_id, admitted, admitted)
                else:
                    records[flow_id] = FlowRecord(
                        spec=spec, drain_time=float("nan"),
                        admitted_time=admitted,
                    )
                    if fast:
                        parked[flow_id] = spec.size
                    else:
                        remaining[flow_id] = spec.size
                    attach(flow_id)

        def apply_event(event: object) -> None:
            nonlocal n_events
            n_events += 1
            if isinstance(event, CapacityEvent):
                link_id = event.link_id
                old = capacities[link_id]
                if traced:
                    tracer.instant("capacity", event.when, layer="netsim",
                                   link=link_id, capacity=event.capacity)
                if old == event.capacity:
                    return
                capacities[link_id] = event.capacity
                solver.set_capacity(link_id, event.capacity)
                if event.capacity <= 0.0 < old:
                    down_links.add(link_id)
                    # Flows crossing the downed link stall: they keep
                    # their place but leave the rate solve.
                    for fid in link_flows.get(link_id, ()):
                        if fid not in stalled:
                            stalled.add(fid)
                            if fid in solver:
                                solver_drop(fid, park=True)
                elif old <= 0.0 < event.capacity:
                    down_links.discard(link_id)
                    for fid in sorted(link_flows.get(link_id, ())):
                        if fid in stalled and not any(
                            l in down_links for l in paths[fid]
                        ):
                            stalled.discard(fid)
                            solver_add(fid)
                return
            assert isinstance(event, RerouteEvent)
            flow_id = event.flow_id
            if traced:
                tracer.instant("reroute", event.when, layer="netsim",
                               flow=flow_id, hops=len(event.path))
            if flow_id in records and not transferring(flow_id):
                return  # already drained; nothing left to move
            if transferring(flow_id):
                # Charge what transferred so far to the old path.
                moved = self._specs[flow_id].size - remaining_of(flow_id)
                delta = moved - accounted.get(flow_id, 0.0)
                if delta > 0:
                    for link_id in paths[flow_id]:
                        self._network.account(link_id, delta)
                    accounted[flow_id] = moved
                detach(flow_id)
                paths[flow_id] = event.path
                attach(flow_id)
            else:
                paths[flow_id] = event.path

        while pending or remaining or fid_slot or parked:
            if not (remaining or fid_slot or parked):
                wake = pending[0][0]
                if event_i < len(events):
                    wake = min(wake, events[event_i][0])
                now = max(now, wake)
            while event_i < len(events) and \
                    events[event_i][0] <= now + EPSILON:
                apply_event(events[event_i][2])
                event_i += 1
            admit(now)
            if not (remaining or fid_slot or parked):
                continue

            # One re-solve covers every admission, completion and fault
            # event applied at this instant; a clean solver answers
            # straight from its cache.
            n_epochs += 1
            rates: Dict[str, float] = {}
            if fast:
                nslots = solver.nslots
                rate_v = solver.rates_array()[:nslots]
                live_v = live_arr[:nslots]
                rem_v = rem_arr[:nslots]
                moving = live_v & (rate_v > 0.0)
                any_moving = bool(moving.any())
                dt_complete = float(
                    (rem_v[moving] / rate_v[moving]).min()
                ) if any_moving else float("inf")
            else:
                rates = solver.rates()
                dt_complete = float("inf")
                for flow_id in remaining:
                    if flow_id in stalled:
                        continue
                    rate = rates[flow_id]
                    if rate == float("inf"):
                        dt_complete = 0.0
                        break
                    if rate > 0:
                        dt_complete = min(dt_complete,
                                          remaining[flow_id] / rate)
            dt_next_start = (pending[0][0] - now) if pending else float("inf")
            dt_next_event = (events[event_i][0] - now) \
                if event_i < len(events) else float("inf")
            dt = min(dt_complete, dt_next_start, dt_next_event)
            if dt == float("inf"):
                detail = ""
                if stalled:
                    detail = (
                        f" ({len(stalled)} flow(s) stuck on down links "
                        "with no recovery or reroute scheduled)"
                    )
                raise RuntimeError(
                    "simulation stalled: active flows make no progress"
                    + detail
                )
            dt = max(dt, 0.0)

            epoch_span = 0
            if traced:
                epoch_span = tracer.begin(
                    "epoch", now, layer="netsim",
                    active=len(remaining) - len(stalled),
                    stalled=len(stalled),
                )
                tracer.sample("netsim.active_flows", now,
                              float(len(remaining)), layer="netsim")
                self._sample_link_utilization(
                    tracer, now, rates, remaining, stalled, paths,
                    capacities, wire_ids, last_util, last_sampled,
                )
            now += dt
            if traced:
                tracer.end(epoch_span, now)
            if fast:
                if any_moving:
                    # Infinite-rate flows drain instantly regardless of
                    # dt; keep them out of the multiply (inf * 0 = NaN).
                    inf_v = moving & _np.isinf(rate_v)
                    if inf_v.any():
                        rem_v[inf_v] = 0.0
                        moving &= ~inf_v
                    if dt > 0.0:
                        rem_v[moving] -= rate_v[moving] * dt
                done = live_v & (rem_v <= thr_arr[:nslots])
                for slot in _np.nonzero(done)[0].tolist():
                    fid = slot_fid[slot]
                    detach(fid, park=False)
                    drain(fid, now, records[fid].admitted_time)
            else:
                finished: List[str] = []
                for flow_id in remaining:
                    if flow_id in stalled:
                        continue
                    rate = rates[flow_id]
                    if rate == float("inf"):
                        remaining[flow_id] = 0.0
                    elif rate > 0.0:
                        remaining[flow_id] -= rate * dt
                    if remaining[flow_id] <= EPSILON * max(
                        1.0, self._specs[flow_id].size
                    ):
                        finished.append(flow_id)
                for flow_id in finished:
                    del remaining[flow_id]
                    detach(flow_id)
                    drain(flow_id, now, records[flow_id].admitted_time)
        METRICS.counter("netsim.events").inc(n_events)
        METRICS.counter("netsim.epochs").inc(n_epochs)
        for attr, name in _SOLVER_METRICS:
            METRICS.counter(name).inc(getattr(solver.stats, attr))

        if len(records) != len(self._specs):
            missing = sorted(set(self._specs) - set(records))
            raise RuntimeError(f"flows never became eligible: {missing}")
        self._account_traffic(paths, accounted)
        end_time = max(
            (r.completion_time for r in records.values()), default=0.0
        )
        if traced:
            # Per-link utilization samples: how much of each physical
            # link's capacity-time the run actually used (Fig. 9's
            # "where do the bytes go" view, directly in the trace).
            for link in self._network.wire_links():
                cap = capacities.get(link.link_id, 0.0)
                busy = cap * end_time
                tracer.instant(
                    "link.traffic", end_time, layer="netsim",
                    link=link.link_id, bytes=link.bytes_carried,
                    utilization=(link.bytes_carried / busy
                                 if busy > 0 else 0.0),
                )
            tracer.end(run_span, end_time)
        return SimulationResult(records=records, network=self._network,
                                end_time=end_time)

    # -- internals ---------------------------------------------------------

    def _sample_link_utilization(
        self,
        tracer,
        now: float,
        rates: Dict[str, float],
        remaining: Dict[str, float],
        stalled: Set[str],
        paths: Dict[str, Tuple[str, ...]],
        capacities: Dict[str, float],
        wire_ids: Tuple[str, ...],
        last_util: Dict[str, float],
        last_sampled: Dict[str, float],
    ) -> None:
        """Emit per-link utilization counter samples for this epoch.

        The sample at ``now`` holds the link's allocated-bandwidth
        fraction for the epoch starting at ``now`` (piecewise-constant
        until the next sample on the same track).  Samples are emitted
        on change only, optionally rate-limited per link by
        ``link_sample_period``; the timeline analyzer integrates these
        tracks into busy fractions and utilization percentiles.
        """
        used: Dict[str, float] = {}
        for flow_id in remaining:
            if flow_id in stalled:
                continue
            rate = rates[flow_id]
            if rate <= 0.0 or rate == float("inf"):
                continue
            for link_id in paths[flow_id]:
                used[link_id] = used.get(link_id, 0.0) + rate
        period = self._link_sample_period
        for link_id in wire_ids:
            cap = capacities.get(link_id, 0.0)
            util = (used.get(link_id, 0.0) / cap) if cap > 0 else 0.0
            previous = last_util.get(link_id)
            if previous is not None and abs(util - previous) <= 1e-12:
                continue
            if period and link_id in last_sampled \
                    and now - last_sampled[link_id] < period:
                continue
            last_util[link_id] = util
            last_sampled[link_id] = now
            tracer.sample(LINK_UTIL_PREFIX + link_id, now, util,
                          layer="netsim")

    def _validate_dependencies(self) -> None:
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(flow_id: str) -> None:
            mark = state.get(flow_id)
            if mark == 1:
                return
            if mark == 0:
                raise ValueError(f"dependency cycle through flow {flow_id!r}")
            state[flow_id] = 0
            spec = self._specs.get(flow_id)
            if spec is None:
                raise KeyError(f"unknown child flow {flow_id!r}")
            for child in spec.children:
                visit(child)
            state[flow_id] = 1

        for flow_id in self._specs:
            visit(flow_id)

    def _account_traffic(self, paths: Dict[str, Tuple[str, ...]],
                         accounted: Dict[str, float]) -> None:
        """Charge each flow's bytes to the links that carried them.

        Total bytes per link do not depend on the rate schedule, so the
        accounting is exact and done once at the end.  For rerouted
        flows, bytes moved before the reroute were charged to the old
        path when the event fired; only the remainder lands here.
        """
        for flow_id, spec in self._specs.items():
            rest = spec.size - accounted.get(flow_id, 0.0)
            for link_id in paths[flow_id]:
                self._network.account(link_id, rest)
