"""Incremental max-min fair rate allocation.

:class:`IncrementalMaxMin` maintains the max-min fair allocation of a
*changing* set of flows.  Where :func:`repro.netsim.fairness.max_min_rates`
re-solves the whole instance from scratch, this solver keeps persistent
state between calls -- per-link active-flow sets and the previous
allocation -- and on each :meth:`rates` call re-solves only the part of
the allocation a perturbation can actually reach.  Two exact pruning
arguments make that cheap:

**Component pruning.**  Flows interact only through shared links, so the
max-min allocation of a disjoint union of instances is the union of the
per-component allocations.  Flows not connected (transitively, via
shared links) to any perturbed flow or link keep their cached rates.

**Water-level pruning (warm start).**  Progressive filling freezes every
flow at the water level equal to its final rate.  A perturbation first
touches the event timeline at a computable level ``λ̄``:

- removing a flow changes nothing below its old rate (its links
  saturate at or above that level in both the old and new instance);
- adding a flow ``g`` changes nothing below ``min(cap_l / n_l)`` over
  ``g``'s links (with ``g`` counted in ``n_l``): a link cannot saturate
  before its capacity split evenly among all its users;
- changing a link's capacity from ``C`` to ``C'`` changes nothing below
  ``min(C, C') / n_l``.

Every flow whose cached rate is below the epoch's ``λ̄`` froze in the
unchanged prefix of the filling and keeps its rate *exactly*.  Only the
flows at or above ``λ̄`` (plus arrivals) re-solve, against residual link
capacities (full capacity minus the below-threshold flows' frozen
consumption).  The below-threshold sums are computed with
:func:`math.fsum`, so results do not depend on set-iteration order.

Within the re-solve region the allocation is recomputed with a
bottleneck-freezing kernel that is algebraically the same progressive
filling the batch solvers implement, but organised around a lazy heap
of link-saturation water levels instead of lock-step rounds: link ``l``
with ``u`` unfrozen users and ``r`` remaining capacity saturates at
level ``level + r / u``; the next event is the smallest such level (or
the smallest unreached rate cap); freezing a flow lazily charges only
the links it traverses.  Links are integer-indexed with
generation-stamped scratch arrays, so a solve allocates only in
proportion to the region it touches.

The result is the same unique max-min allocation the exact solvers
compute; property tests in ``tests/test_incremental.py`` cross-check
long add/remove/set-capacity histories against
:func:`repro.netsim.fairness.max_min_rates_py` to within 1e-9.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from math import fsum
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

_INF = float("inf")

#: Relative slack applied to the water-level threshold: flows within one
#: part in 1e9 of the boundary are re-solved rather than reused, so
#: floating-point drift in cached rates can never strand a flow on the
#: wrong side of the cut.
_THRESHOLD_SLACK = 1.0 - 1e-9


@dataclass
class SolverStats:
    """Work counters for one :class:`IncrementalMaxMin` instance."""

    solves: int = 0             #: rates() calls that found dirty state
    cache_hits: int = 0         #: rates() calls answered from cache alone
    components_resolved: int = 0  #: re-solve regions filled
    flows_resolved: int = 0     #: flow-rate recomputations, summed
    flows_reused: int = 0       #: cached rates carried across a solve

    def merge_into(self, other: "SolverStats") -> None:
        other.solves += self.solves
        other.cache_hits += self.cache_hits
        other.components_resolved += self.components_resolved
        other.flows_resolved += self.flows_resolved
        other.flows_reused += self.flows_reused


class _Flow:
    """Internal per-flow record (identity-hashed, generation-stamped)."""

    __slots__ = ("fid", "links", "cap", "seen", "frozen")

    def __init__(self, fid: str, links: Tuple[int, ...],
                 cap: Optional[float]) -> None:
        self.fid = fid
        self.links = links      #: distinct link indices traversed
        self.cap = cap
        self.seen = 0           #: region-BFS generation stamp
        self.frozen = 0         #: fill generation stamp


class IncrementalMaxMin:
    """Max-min fair rates over a mutable flow set, solved incrementally.

    Usage::

        solver = IncrementalMaxMin(network.capacities())
        solver.add_flow("f1", ("l1", "l2"))
        solver.add_flow("f2", ("l2",), rate_cap=3.0)
        rates = solver.rates()          # solves
        solver.remove_flow("f1")
        rates = solver.rates()          # re-solves only what f1 touched

    :meth:`rates` returns the solver's live rate mapping -- treat it as
    read-only; it is updated in place by later calls.
    """

    def __init__(self, capacities: Mapping[str, float]) -> None:
        self._link_index: Dict[str, int] = {}
        self._cap_arr: List[float] = []
        for link_id, cap in capacities.items():
            if cap < 0:
                raise ValueError(f"link {link_id!r} capacity must be >= 0")
            self._link_index[link_id] = len(self._cap_arr)
            self._cap_arr.append(cap)
        n = len(self._cap_arr)
        #: Per-link scratch state for the fill kernel, generation-stamped
        #: so a solve resets only the links it actually touches.
        self._lgen = [0] * n
        self._lrem = [0.0] * n      # residual capacity at water level _lmark
        self._lmark = [0.0] * n     # level of the link's last lazy update
        self._lver = [0] * n        # bumped when users/remaining change
        self._lrising = [0] * n     # unfrozen re-solved users
        self._users: List[Set[_Flow]] = [set() for _ in range(n)]
        self._gen = 0

        self._flows: Dict[str, _Flow] = {}
        self._rates: Dict[str, float] = {}
        self._dirty_flows: Set[_Flow] = set()
        self._dirty_links: Set[int] = set()
        #: Lowest water level any pending perturbation can reach.
        self._bound = _INF
        self.stats = SolverStats()

    # -- mutation ----------------------------------------------------------

    def __contains__(self, flow_id: str) -> bool:
        return flow_id in self._flows

    def __len__(self) -> int:
        return len(self._flows)

    def add_flow(self, flow_id: str, links: Sequence[str],
                 rate_cap: Optional[float] = None) -> None:
        """Add a flow traversing ``links`` (set semantics, like the batch
        solvers: a repeated link is charged once)."""
        if flow_id in self._flows:
            raise ValueError(f"duplicate flow id {flow_id!r}")
        index = self._link_index
        try:
            link_ids = tuple({index[l]: None for l in links})
        except KeyError as exc:
            raise KeyError(
                f"flow {flow_id!r} uses unknown link {exc.args[0]!r}"
            ) from None
        flow = _Flow(flow_id, link_ids, rate_cap)
        self._flows[flow_id] = flow
        users = self._users
        cap_arr = self._cap_arr
        bound = self._bound
        for li in link_ids:
            users[li].add(flow)
            # No link saturates below an even split among all its users.
            first_touch = cap_arr[li] / len(users[li])
            if first_touch < bound:
                bound = first_touch
        self._bound = bound
        self._dirty_flows.add(flow)

    def remove_flow(self, flow_id: str) -> None:
        """Remove a flow; nothing below its old rate is disturbed."""
        flow = self._flows.pop(flow_id)
        users = self._users
        if flow in self._dirty_flows and flow.fid not in self._rates:
            # Un-add: the flow was added since the last solve and never
            # received a rate, so no other flow's allocation can depend
            # on it yet.  Cancel the pending add outright instead of
            # dirtying its links; with no other pending perturbation the
            # next rates() call is a cache hit.
            self._dirty_flows.discard(flow)
            for li in flow.links:
                users[li].discard(flow)
            if not self._dirty_flows and not self._dirty_links:
                self._bound = _INF
            return
        dirty_links = self._dirty_links
        for li in flow.links:
            users[li].discard(flow)
            dirty_links.add(li)
        old_rate = self._rates.pop(flow_id, _INF)
        if old_rate < self._bound:
            self._bound = old_rate
        self._dirty_flows.discard(flow)

    def reroute(self, flow_id: str, links: Sequence[str],
                rate_cap: Optional[float] = None) -> None:
        """Move a flow onto a new path.

        Shared links are deduped: only links the flow actually leaves go
        onto the dirty-link list (the flow itself seeds the region BFS,
        which covers its new links), and a reroute onto the identical
        link set with an unchanged rate cap is a pure no-op -- §3.1
        rewiring storms that re-issue a flow's current path no longer
        trigger region re-solves.  The water-level bound matches the old
        remove+add pair exactly: nothing below the flow's old rate is
        disturbed on departed links, nothing below a link's even split
        among its users is disturbed on the new path.
        """
        flow = self._flows.get(flow_id)
        if flow is None:
            raise KeyError(flow_id)
        index = self._link_index
        try:
            new_links = tuple({index[l]: None for l in links})
        except KeyError as exc:
            raise KeyError(
                f"flow {flow_id!r} uses unknown link {exc.args[0]!r}"
            ) from None
        if new_links == flow.links and rate_cap == flow.cap:
            return
        users = self._users
        cap_arr = self._cap_arr
        old_set = set(flow.links)
        new_set = set(new_links)
        for li in flow.links:
            if li not in new_set:
                users[li].discard(flow)
                self._dirty_links.add(li)
        bound = self._bound
        for li in new_links:
            link_users = users[li]
            if li not in old_set:
                link_users.add(flow)
            first_touch = cap_arr[li] / len(link_users)
            if first_touch < bound:
                bound = first_touch
        # Keep the stale rate entry: the flow seeds the next region
        # re-solve, which overwrites it.  Popping it would make a later
        # remove_flow() mistake this flow for a never-solved fresh add
        # (``fid not in self._rates``) and cancel it without releasing
        # its links' capacity.
        old_rate = self._rates.get(flow_id, _INF)
        if old_rate < bound:
            bound = old_rate
        self._bound = bound
        flow.links = new_links
        flow.cap = rate_cap
        self._dirty_flows.add(flow)

    def set_capacity(self, link_id: str, capacity: float) -> None:
        """Change a link's capacity (0 = down: its flows get rate 0)."""
        if capacity < 0:
            raise ValueError(f"link {link_id!r} capacity must be >= 0")
        li = self._link_index.get(link_id)
        if li is None:
            raise KeyError(f"unknown link {link_id!r}")
        old = self._cap_arr[li]
        if old == capacity:
            return
        self._cap_arr[li] = capacity
        users = self._users[li]
        if users:
            self._dirty_links.add(li)
            first_touch = min(old, capacity) / len(users)
            if first_touch < self._bound:
                self._bound = first_touch

    # -- solving -----------------------------------------------------------

    def rates(self) -> Mapping[str, float]:
        """The max-min allocation for the current flow set.

        Re-solves only the perturbed region; returns the live internal
        mapping (do not mutate).
        """
        if not self._dirty_flows and not self._dirty_links:
            self.stats.cache_hits += 1
            return self._rates
        self.stats.solves += 1
        rates = self._rates
        users = self._users
        cap_arr = self._cap_arr
        lgen, lrem, lmark = self._lgen, self._lrem, self._lmark
        lver, lrising = self._lver, self._lrising
        threshold = self._bound * _THRESHOLD_SLACK
        self._gen += 1
        gen = self._gen

        region: List[_Flow] = []
        stack: List[_Flow] = []
        touched: List[int] = []

        flows_dict = self._flows
        for flow in self._dirty_flows:
            # A flow added and removed within the same dirty window is
            # gone from the registry; skip its stale object.
            if flows_dict.get(flow.fid) is flow and flow.seen != gen:
                flow.seen = gen
                region.append(flow)
                stack.append(flow)

        def process_link(li: int) -> None:
            """First touch of a link: split its users into re-solve
            region (rate >= threshold, pulled into the BFS) and frozen
            environment (their consumption becomes a capacity debit)."""
            lgen[li] = gen
            touched.append(li)
            n_rising = 0
            env: List[float] = []
            for u in users[li]:
                if u.seen == gen:
                    n_rising += 1
                else:
                    r = rates.get(u.fid, 0.0)
                    if r >= threshold:
                        u.seen = gen
                        region.append(u)
                        stack.append(u)
                        n_rising += 1
                    else:
                        env.append(r)
            residual = cap_arr[li] - fsum(env) if env else cap_arr[li]
            lrem[li] = residual if residual > 0.0 else 0.0
            lmark[li] = 0.0
            lver[li] = 1
            lrising[li] = n_rising

        for li in self._dirty_links:
            if lgen[li] != gen:
                process_link(li)
        while stack:
            flow = stack.pop()
            for li in flow.links:
                if lgen[li] != gen:
                    process_link(li)

        self._dirty_links.clear()
        self._dirty_flows = set()
        self._bound = _INF
        if region:
            self._fill(region, touched, gen)
            self.stats.components_resolved += 1
            self.stats.flows_resolved += len(region)
            self.stats.flows_reused += len(flows_dict) - len(region)
        return rates

    def rate(self, flow_id: str) -> float:
        return self.rates()[flow_id]

    # -- internals ---------------------------------------------------------

    def _fill(self, region: Sequence[_Flow], touched: Sequence[int],
              gen: int) -> None:
        """Bottleneck-freezing progressive fill of one re-solve region.

        ``touched`` links were initialised by ``process_link`` with
        residual capacities and rising-user counts; the region is closed
        under link sharing above the threshold, so every above-threshold
        user of every touched link is in the region.
        """
        rates = self._rates
        lrem, lmark = self._lrem, self._lmark
        lver, lrising = self._lver, self._lrising
        users = self._users

        cap_heap: List[Tuple[float, str, _Flow]] = []
        n_active = 0
        for flow in region:
            if not flow.links and flow.cap is None:
                rates[flow.fid] = _INF
                continue
            n_active += 1
            if flow.cap is not None:
                cap_heap.append((flow.cap, flow.fid, flow))
        link_heap: List[Tuple[float, int, int]] = [
            (lrem[li] / lrising[li], 1, li)
            for li in touched if lrising[li]
        ]
        heapify(link_heap)
        heapify(cap_heap)

        level = 0.0

        def freeze(flow: _Flow, rate: float, at: float) -> None:
            nonlocal n_active
            rates[flow.fid] = rate
            flow.frozen = gen
            n_active -= 1
            for li in flow.links:
                # Charge the rise since the link's last update, with the
                # user count *including* the flow being frozen.
                n = lrising[li]
                left = lrem[li] - (at - lmark[li]) * n
                lrem[li] = left if left > 0.0 else 0.0
                lmark[li] = at
                lrising[li] = n - 1
                lver[li] += 1

        while n_active:
            while cap_heap and cap_heap[0][2].frozen == gen:
                heappop(cap_heap)
            cap_level = cap_heap[0][0] if cap_heap else _INF
            # Lazily repair the link heap: a stale top entry is replaced
            # by the link's current saturation level (which only ever
            # rises as users freeze, so stale entries are lower bounds
            # and the heap order stays correct).
            while link_heap:
                sat_level, ver, li = link_heap[0]
                if lver[li] == ver:
                    break
                heappop(link_heap)
                n = lrising[li]
                if n:
                    left = lrem[li]
                    if left < 0.0:
                        left = 0.0
                    heappush(link_heap, (lmark[li] + left / n, lver[li], li))
            link_level = link_heap[0][0] if link_heap else _INF
            if cap_level == _INF and link_level == _INF:
                # Unconstrained flows (no links, no cap) -- cannot happen
                # given the admission above, but guard against looping.
                for flow in region:  # pragma: no cover - defensive
                    if flow.frozen != gen and rates.get(flow.fid) != _INF:
                        rates[flow.fid] = _INF
                break
            if cap_level <= link_level:
                cap, _, flow = heappop(cap_heap)
                if level < cap:
                    level = cap
                freeze(flow, cap, level)
            else:
                sat_level, _, li = heappop(link_heap)
                if level < sat_level:
                    level = sat_level
                for flow in users[li]:
                    if flow.frozen != gen and flow.seen == gen:
                        freeze(flow, level, level)
