"""A k-ary fat-tree topology [Al-Fares et al., SIGCOMM'08].

Used by the multiple-aggregation-trees ablation: a fat-tree has rich path
diversity ((k/2)^2 core paths between pods), which is exactly the property
NetAgg's multiple disjoint aggregation trees exploit (§3.1, "Multiple
aggregation trees per application").

Structure for even ``k``: ``k`` pods, each with ``k/2`` edge (ToR) and
``k/2`` aggregation switches; ``(k/2)^2`` core switches; ``k/2`` hosts per
edge switch.  All links run at ``link_rate`` -- a fat-tree is full
bisection by construction.
"""

from __future__ import annotations

from repro.topology.base import AGGR, CORE, HOST, TOR, Node, Topology
from repro.units import Gbps


def fat_tree(k: int = 4, link_rate: float = Gbps(1.0)) -> Topology:
    """Build a k-ary fat-tree (k even, >= 2)."""
    if k < 2 or k % 2:
        raise ValueError("fat-tree arity k must be an even integer >= 2")
    half = k // 2
    topo = Topology(name=f"fat-tree-k{k}")

    for core_idx in range(half * half):
        topo.add_node(Node(f"core:{core_idx}", CORE))

    for pod in range(k):
        for aggr_idx in range(half):
            aggr_id = f"aggr:{pod}:{aggr_idx}"
            topo.add_node(Node(aggr_id, AGGR, pod=pod))
            # Aggregation switch j of every pod connects to cores
            # [j*half, (j+1)*half) -- the classic fat-tree wiring.
            for i in range(half):
                topo.connect(aggr_id, f"core:{aggr_idx * half + i}", link_rate)
        for tor_idx in range(half):
            rack = pod * half + tor_idx
            tor_id = f"tor:{rack}"
            topo.add_node(Node(tor_id, TOR, rack=rack, pod=pod))
            for aggr_idx in range(half):
                topo.connect(tor_id, f"aggr:{pod}:{aggr_idx}", link_rate)
            for host_idx in range(half):
                host_id = f"host:{rack * half + host_idx}"
                topo.add_node(Node(host_id, HOST, rack=rack, pod=pod))
                topo.connect(host_id, tor_id, link_rate)

    return topo
