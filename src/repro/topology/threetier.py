"""The paper's three-tier multi-rooted topology (§2.4, §4.1).

Structure (modelled after VL2/fat-tree style scalable DC architectures):

- ``n_pods`` pods, each with ``tors_per_pod`` top-of-rack switches and
  ``aggrs_per_pod`` aggregation switches;
- every ToR connects to every aggregation switch of its pod;
- every aggregation switch connects to every one of ``n_cores`` core
  switches (multi-rooted: many equal-cost core paths);
- ``hosts_per_tor`` servers per rack on ``edge_rate`` links.

Over-subscription is applied at the ToR tier, as in the paper: the total
uplink capacity of a ToR is ``hosts_per_tor * edge_rate /
oversubscription``, split across its pod's aggregation switches.
Aggregation-to-core capacity preserves the post-ToR bandwidth (no further
over-subscription), matching the paper's "over-subscription ratio at the
ToR tier" knob.

The paper's full-size instance -- 1,024 servers, 64 ToR, 16 aggregation
and 8 core switches of 16-port class -- is ``ThreeTierParams()`` with
defaults; experiments use scaled-down instances for CI-speed runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.topology.base import AGGR, CORE, HOST, TOR, Node, Topology
from repro.units import Gbps


@dataclass(frozen=True)
class ThreeTierParams:
    """Parameters of the three-tier builder (defaults = paper scale)."""

    n_pods: int = 8
    tors_per_pod: int = 8
    aggrs_per_pod: int = 2
    n_cores: int = 8
    hosts_per_tor: int = 16
    edge_rate: float = Gbps(1.0)
    oversubscription: float = 4.0

    def __post_init__(self) -> None:
        if min(self.n_pods, self.tors_per_pod, self.aggrs_per_pod,
               self.n_cores, self.hosts_per_tor) < 1:
            raise ValueError("all counts must be >= 1")
        if self.edge_rate <= 0:
            raise ValueError("edge_rate must be positive")
        if self.oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1 (1 = full bisection)")

    @property
    def n_hosts(self) -> int:
        return self.n_pods * self.tors_per_pod * self.hosts_per_tor

    @property
    def n_tors(self) -> int:
        return self.n_pods * self.tors_per_pod

    @property
    def tor_uplink_rate(self) -> float:
        """Capacity of one ToR->aggregation link."""
        total = self.hosts_per_tor * self.edge_rate / self.oversubscription
        return total / self.aggrs_per_pod

    @property
    def aggr_core_rate(self) -> float:
        """Capacity of one aggregation->core link."""
        down = self.tors_per_pod * self.tor_uplink_rate
        return down / self.n_cores

    def scaled(self, **overrides) -> "ThreeTierParams":
        """A copy with some fields replaced (convenience for sweeps)."""
        return replace(self, **overrides)


def three_tier(params: ThreeTierParams = ThreeTierParams()) -> Topology:
    """Build the three-tier multi-rooted topology."""
    topo = Topology(name=f"three-tier-{params.n_hosts}")

    for core_idx in range(params.n_cores):
        topo.add_node(Node(f"core:{core_idx}", CORE))

    for pod in range(params.n_pods):
        for aggr_idx in range(params.aggrs_per_pod):
            aggr_id = f"aggr:{pod}:{aggr_idx}"
            topo.add_node(Node(aggr_id, AGGR, pod=pod))
            for core_idx in range(params.n_cores):
                topo.connect(aggr_id, f"core:{core_idx}", params.aggr_core_rate)
        for tor_idx in range(params.tors_per_pod):
            rack = pod * params.tors_per_pod + tor_idx
            tor_id = f"tor:{rack}"
            topo.add_node(Node(tor_id, TOR, rack=rack, pod=pod))
            for aggr_idx in range(params.aggrs_per_pod):
                topo.connect(tor_id, f"aggr:{pod}:{aggr_idx}",
                             params.tor_uplink_rate)
            for host_idx in range(params.hosts_per_tor):
                host_id = f"host:{rack * params.hosts_per_tor + host_idx}"
                topo.add_node(Node(host_id, HOST, rack=rack, pod=pod))
                topo.connect(host_id, tor_id, params.edge_rate)

    return topo


def attach_boxes_everywhere(
    topo: Topology,
    link_rate: float = Gbps(10.0),
    proc_rate: float = Gbps(9.2),
    count: int = 1,
    tiers: tuple = (TOR, AGGR, CORE),
) -> None:
    """Attach ``count`` agg boxes to every switch of the given tiers.

    Defaults match the paper's full NetAgg deployment: one box per switch,
    10 Gbps attachment links, 9.2 Gbps processing rate (the measured rate
    of the prototype, §4.2).
    """
    for tier in tiers:
        for switch_id in topo.switches(tier):
            topo.attach_aggbox(switch_id, link_rate=link_rate,
                               proc_rate=proc_rate, count=count)
