"""Generic topology graph shared by all builders.

A topology is a set of typed nodes (hosts, switches at three tiers, agg
boxes) plus a :class:`repro.netsim.network.Network` of directed links.
Every physical cable is represented as two directed links, one per
direction, named ``"<src>-><dst>"``.

Agg boxes are first-class: :meth:`Topology.attach_aggbox` wires a box to a
switch with a pair of (usually 10 Gbps) links *and* creates the virtual
``proc:`` link that models the box's aggregation processing rate
(§2.4 of the paper: the minimum rate R an agg box must sustain).

Equal-cost paths are enumerated by breadth-first search over the switch
graph and memoised; :class:`repro.netsim.routing.EcmpRouter` hashes flows
onto them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.netsim.network import Link, Network

#: Node tiers, edge to core.
HOST = "host"
TOR = "tor"
AGGR = "aggr"
CORE = "core"
AGGBOX = "aggbox"

SWITCH_TIERS = (TOR, AGGR, CORE)


@dataclass(frozen=True)
class Node:
    """A vertex of the topology graph.

    Attributes:
        node_id: unique id, e.g. ``"host:12"`` or ``"aggr:1:0"``.
        tier: one of ``host``, ``tor``, ``aggr``, ``core``, ``aggbox``.
        rack: rack index for hosts/ToRs (-1 elsewhere).
        pod: pod index for hosts/ToRs/aggregation switches (-1 for cores).
    """

    node_id: str
    tier: str
    rack: int = -1
    pod: int = -1


@dataclass(frozen=True)
class AggBoxInfo:
    """One agg box attached to a switch.

    Attributes:
        box_id: node id of the box, e.g. ``"box:tor:3:0"``.
        switch_id: the switch it hangs off.
        proc_link: id of the virtual link modelling its processing rate.
        uplink: link id box -> switch.
        downlink: link id switch -> box.
    """

    box_id: str
    switch_id: str
    proc_link: str
    uplink: str
    downlink: str


def link_id(src: str, dst: str) -> str:
    """Canonical id of the directed link from ``src`` to ``dst``."""
    return f"{src}->{dst}"


class Topology:
    """Nodes + links + agg boxes, with equal-cost path enumeration."""

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self.network = Network()
        self._nodes: Dict[str, Node] = {}
        self._adjacency: Dict[str, List[str]] = {}
        self._boxes: Dict[str, List[AggBoxInfo]] = {}  # switch -> boxes
        self._box_index: Dict[str, AggBoxInfo] = {}  # box id -> info
        self._paths_cache: Dict[Tuple[str, str], Tuple[Tuple[str, ...], ...]] = {}
        #: Per-source BFS over the relay (switch) graph: src ->
        #: (pop order, distances, shortest-path predecessors).  One
        #: sweep serves every destination that source routes to.
        self._bfs_cache: Dict[
            str, Tuple[List[str], Dict[str, int], Dict[str, List[str]]]
        ] = {}

    # -- construction -------------------------------------------------------

    def add_node(self, node: Node) -> None:
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node
        self._adjacency[node.node_id] = []

    def connect(self, a: str, b: str, capacity_ab: float,
                capacity_ba: Optional[float] = None) -> None:
        """Wire nodes ``a`` and ``b`` with a directed link pair."""
        for end in (a, b):
            if end not in self._nodes:
                raise KeyError(f"unknown node {end!r}")
        if capacity_ba is None:
            capacity_ba = capacity_ab
        self.network.add_link(Link(link_id(a, b), capacity_ab, src=a, dst=b))
        self.network.add_link(Link(link_id(b, a), capacity_ba, src=b, dst=a))
        self._adjacency[a].append(b)
        self._adjacency[b].append(a)
        self._paths_cache.clear()
        self._bfs_cache.clear()

    def attach_aggbox(
        self,
        switch_id: str,
        link_rate: float,
        proc_rate: float,
        count: int = 1,
    ) -> List[AggBoxInfo]:
        """Attach ``count`` agg boxes to ``switch_id``.

        Each box gets a bidirectional wire link of ``link_rate`` and a
        virtual processing link of capacity ``proc_rate`` traversed by all
        segments the box aggregates.  Returns the new boxes' infos.
        """
        switch = self._nodes.get(switch_id)
        if switch is None:
            raise KeyError(f"unknown switch {switch_id!r}")
        if switch.tier not in SWITCH_TIERS:
            raise ValueError(f"{switch_id!r} is not a switch")
        created = []
        existing = len(self._boxes.get(switch_id, []))
        for i in range(existing, existing + count):
            box_id = f"box:{switch_id}:{i}"
            self.add_node(Node(box_id, AGGBOX, rack=switch.rack, pod=switch.pod))
            self.connect(box_id, switch_id, link_rate)
            proc_link = f"proc:{box_id}"
            self.network.add_link(Link(proc_link, proc_rate, virtual=True))
            info = AggBoxInfo(
                box_id=box_id,
                switch_id=switch_id,
                proc_link=proc_link,
                uplink=link_id(box_id, switch_id),
                downlink=link_id(switch_id, box_id),
            )
            self._boxes.setdefault(switch_id, []).append(info)
            self._box_index[box_id] = info
            created.append(info)
        return created

    # -- lookups -------------------------------------------------------------

    def node(self, node_id: str) -> Node:
        return self._nodes[node_id]

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def nodes(self, tier: Optional[str] = None) -> List[Node]:
        if tier is None:
            return list(self._nodes.values())
        return [n for n in self._nodes.values() if n.tier == tier]

    def hosts(self) -> List[str]:
        return [n.node_id for n in self.nodes(HOST)]

    def switches(self, tier: str) -> List[str]:
        if tier not in SWITCH_TIERS:
            raise ValueError(f"not a switch tier: {tier!r}")
        return [n.node_id for n in self.nodes(tier)]

    def neighbors(self, node_id: str) -> List[str]:
        return list(self._adjacency[node_id])

    def tor_of(self, host_id: str) -> str:
        """The ToR switch a host (or agg box) connects to."""
        node = self._nodes[host_id]
        if node.tier == AGGBOX:
            return self._box_index[host_id].switch_id
        if node.tier != HOST:
            raise ValueError(f"{host_id!r} is not a host")
        for neighbor in self._adjacency[host_id]:
            if self._nodes[neighbor].tier == TOR:
                return neighbor
        raise ValueError(f"host {host_id!r} has no ToR")

    def rack_of(self, host_id: str) -> int:
        return self._nodes[host_id].rack

    def pod_of(self, node_id: str) -> int:
        return self._nodes[node_id].pod

    def boxes_at(self, switch_id: str) -> List[AggBoxInfo]:
        return list(self._boxes.get(switch_id, []))

    def all_boxes(self) -> List[AggBoxInfo]:
        return list(self._box_index.values())

    def box(self, box_id: str) -> AggBoxInfo:
        return self._box_index[box_id]

    def switches_with_boxes(self) -> List[str]:
        return [s for s, boxes in self._boxes.items() if boxes]

    # -- routing -------------------------------------------------------------

    def equal_cost_paths(self, src: str, dst: str) -> Tuple[Tuple[str, ...], ...]:
        """All shortest paths from ``src`` to ``dst`` as link-id tuples.

        Agg boxes participate like hosts (they are leaves on a switch).
        Virtual ``proc:`` links never appear here; strategies add them
        explicitly for segments that are aggregated.
        """
        if src == dst:
            return ((),)
        key = (src, dst)
        cached = self._paths_cache.get(key)
        if cached is not None:
            return cached
        paths = tuple(
            tuple(link_id(a, b) for a, b in zip(nodes, nodes[1:]))
            for nodes in self._bfs_all_shortest(src, dst)
        )
        self._paths_cache[key] = paths
        return paths

    def node_paths(self, src: str, dst: str) -> List[List[str]]:
        """All shortest paths as node-id sequences (used by strategies)."""
        if src == dst:
            return [[src]]
        return self._bfs_all_shortest(src, dst)

    def _source_bfs(
        self, src: str,
    ) -> Tuple[List[str], Dict[str, int], Dict[str, List[str]]]:
        """One BFS from ``src`` over the relay (switch) graph, memoised.

        Leaf nodes (hosts, boxes) never relay traffic, so the sweep
        skips them entirely; a leaf destination is resolved at query
        time from its adjacent relays.  Returns the nodes in pop order
        (non-decreasing distance), the distance map and the
        shortest-path predecessor lists.
        """
        cached = self._bfs_cache.get(src)
        if cached is not None:
            return cached
        dist: Dict[str, int] = {src: 0}
        preds: Dict[str, List[str]] = {src: []}
        order: List[str] = [src]
        queue = deque([src])
        while queue:
            current = queue.popleft()
            for neighbor in self._adjacency[current]:
                if self._nodes[neighbor].tier in (HOST, AGGBOX):
                    continue
                if neighbor not in dist:
                    dist[neighbor] = dist[current] + 1
                    preds[neighbor] = [current]
                    queue.append(neighbor)
                    order.append(neighbor)
                elif dist[neighbor] == dist[current] + 1:
                    preds[neighbor].append(current)
        self._bfs_cache[src] = (order, dist, preds)
        return order, dist, preds

    def _bfs_all_shortest(self, src: str, dst: str) -> List[List[str]]:
        if src not in self._nodes or dst not in self._nodes:
            raise KeyError(f"unknown endpoint in route {src!r} -> {dst!r}")
        order, dist, preds = self._source_bfs(src)
        if dst in dist:
            dst_preds = preds[dst]
        else:
            # Leaf destination: its predecessors are the nearest
            # adjacent relays (or the source itself), in pop order --
            # exactly the order a per-destination BFS discovers them.
            adjacent = set(self._adjacency[dst])
            best = None
            for node in order:
                if node in adjacent:
                    best = dist[node]
                    break
            if best is None:
                raise ValueError(f"no path from {src!r} to {dst!r}")
            dst_preds = [node for node in order
                         if node in adjacent and dist[node] == best]

        paths: List[List[str]] = []

        def unwind(node: str, acc: List[str]) -> None:
            if node == src:
                paths.append([src] + acc)
                return
            for pred in (dst_preds if node == dst else preds[node]):
                unwind(pred, [node] + acc)

        unwind(dst, [])
        return paths
