"""Data-centre topologies with agg-box attachment points.

- :class:`repro.topology.base.Topology` -- generic node/link graph with
  equal-cost shortest-path enumeration and agg-box bookkeeping;
- :func:`repro.topology.threetier.three_tier` -- the paper's three-tier
  multi-rooted topology (ToR / aggregation / core), parameterised by
  over-subscription and link rates;
- :func:`repro.topology.fattree.fat_tree` -- a k-ary fat-tree, used by the
  multi-tree ablation.
"""

from repro.topology.base import AggBoxInfo, Node, Topology
from repro.topology.fattree import fat_tree
from repro.topology.threetier import ThreeTierParams, three_tier

__all__ = [
    "Node",
    "AggBoxInfo",
    "Topology",
    "ThreeTierParams",
    "three_tier",
    "fat_tree",
]
