#!/usr/bin/env python
"""Lint: telemetry lives in ``repro.obs``, not in ad-hoc counter dicts.

Before the unified observability layer, each layer grew its own
telemetry (``SimCounters`` in the simulator, shim-event tallies in the
platform, health/queue stats on the boxes).  This check keeps it from
growing back: outside ``src/repro/obs/``, modules may not

- define a class whose name says it is a telemetry container
  (``*Counters``, ``*Telemetry``, ``*Tally``, ``*MetricsRegistry``),
- bind a module-level ``COUNTERS`` / ``METRICS`` / ``TELEMETRY``-style
  global to a fresh container, or
- parse raw trace payloads ad hoc: mention the ``traceEvents`` key or
  define a ``parse/load/read`` + ``trace`` function.  Trace files are
  consumed through ``repro.obs.analyze.TraceData`` (and written by
  ``repro.obs.export``) so the exporter's schema quirks -- exact-time
  ``t0``/``t1`` keys, seq-encoded ordering -- live in one place, or
- re-implement windowing / smoothing math: define a function, class or
  attribute whose name says EWMA, or a class whose name says it is a
  windowed/rolling series or burn-rate tracker.  That arithmetic lives
  in :mod:`repro.obs.live` (``ewma_step``, ``WindowedSeries``,
  ``SloMonitor``); callers import it (as ``core.partition``'s
  ``GrayDetector`` does) rather than growing private copies whose
  boundary conventions drift.

Allowlisted: ``repro.netsim.simulator``'s ``SimCounters``/``COUNTERS``
pair, which survives as a *deprecated facade* over ``repro.obs.METRICS``
for old callers (it holds no state of its own).

Run from the repo root::

    python tools/check_obs.py          # exit 1 on violations

Also exercised by the tier-1 suite (``tests/test_obs.py``) and the CI
lint job.
"""

from __future__ import annotations

import ast
import pathlib
import re
import sys
from typing import List, Tuple

SRC = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"

#: Class names that read as ad-hoc telemetry containers.
CLASS_PATTERN = re.compile(
    r"(Counters|Telemetry|Tally|MetricsRegistry)$")

#: Module-level globals that read as telemetry singletons.
GLOBAL_PATTERN = re.compile(r"^(COUNTERS|METRICS|TELEMETRY|STATS)$")

#: Function names that read as ad-hoc trace-payload parsers.
TRACE_FN_PATTERN = re.compile(
    r"(?:^|_)(?:parse|load|read)\w*_trace|trace\w*_(?:parse|load|read)")

#: Definition/binding names that read as private smoothing math.
EWMA_PATTERN = re.compile(r"(?i)ewma")

#: Class names that read as ad-hoc windowed-series / burn-rate
#: containers (repro.obs.live owns that arithmetic).
WINDOW_CLASS_PATTERN = re.compile(
    r"(Windowed?(Series|Stats|Store)?$|Rolling|BurnRate|TimeSeries)")

#: (module relative to src/repro, symbol) pairs that may stay: the
#: simulator's deprecated SimCounters facade over repro.obs.METRICS.
ALLOWLIST = {
    ("netsim/simulator.py", "SimCounters"),
    ("netsim/simulator.py", "COUNTERS"),
    # Hadoop-style *job* counters: domain data of the modelled
    # application (the paper's MapReduce workload), not repo telemetry.
    ("apps/hadoop/job.py", "Counters"),
}


def check_file(path: pathlib.Path) -> List[Tuple[int, str]]:
    rel = path.relative_to(SRC).as_posix()
    problems: List[Tuple[int, str]] = []
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    problems.extend(_check_trace_parsing(tree))
    problems.extend(_check_window_math(tree))
    for node in tree.body:
        if isinstance(node, ast.ClassDef) \
                and CLASS_PATTERN.search(node.name) \
                and (rel, node.name) not in ALLOWLIST:
            problems.append((
                node.lineno,
                f"class {node.name!r} looks like an ad-hoc telemetry "
                f"container; use repro.obs.METRICS instead",
            ))
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) \
                    and GLOBAL_PATTERN.match(target.id) \
                    and (rel, target.id) not in ALLOWLIST:
                problems.append((
                    node.lineno,
                    f"module-level {target.id!r} looks like a telemetry "
                    f"singleton; register metrics on repro.obs.METRICS",
                ))
    return problems


def _check_window_math(tree: ast.Module) -> List[Tuple[int, str]]:
    """Flag private windowing / EWMA math (module docstring, rule 4).

    Only *definitions and bindings* count: a function, class, or
    assignment target named after EWMA, or a class named like a
    windowed-series container.  Importing and calling
    ``repro.obs.live.ewma_step`` is the sanctioned pattern and never
    binds such a name, so it passes.
    """
    problems: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and EWMA_PATTERN.search(node.name):
            problems.append((
                node.lineno,
                f"function {node.name!r} re-implements EWMA math; "
                f"use repro.obs.live.ewma_step",
            ))
        elif isinstance(node, ast.ClassDef):
            if EWMA_PATTERN.search(node.name) \
                    or WINDOW_CLASS_PATTERN.search(node.name):
                problems.append((
                    node.lineno,
                    f"class {node.name!r} looks like a private windowed"
                    f"-series/EWMA container; use repro.obs.live "
                    f"(WindowedSeries, TimeSeriesStore, SloMonitor)",
                ))
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                name = None
                if isinstance(target, ast.Name):
                    name = target.id
                elif isinstance(target, ast.Attribute):
                    name = target.attr
                if name is not None and EWMA_PATTERN.search(name):
                    problems.append((
                        node.lineno,
                        f"binding {name!r} looks like private EWMA "
                        f"state; keep the smoothing arithmetic in "
                        f"repro.obs.live.ewma_step",
                    ))
    return problems


def _check_trace_parsing(tree: ast.Module) -> List[Tuple[int, str]]:
    """Flag ad-hoc trace-payload parsing (module docstring, rule 3).

    Docstrings are exempt (they may *describe* the format); string
    constants used as code -- dict keys, comparisons -- are not.
    """
    problems: List[Tuple[int, str]] = []
    docstrings = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            body = node.body
            if body and isinstance(body[0], ast.Expr) \
                    and isinstance(body[0].value, ast.Constant) \
                    and isinstance(body[0].value.value, str):
                docstrings.add(id(body[0].value))
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and node.value == "traceEvents" \
                and id(node) not in docstrings:
            problems.append((
                node.lineno,
                "raw 'traceEvents' access outside repro.obs; load trace "
                "files via repro.obs.analyze.TraceData",
            ))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and TRACE_FN_PATTERN.search(node.name):
            problems.append((
                node.lineno,
                f"function {node.name!r} looks like an ad-hoc trace "
                f"parser; use repro.obs.analyze.TraceData instead",
            ))
    return problems


def run() -> int:
    failures = []
    for path in sorted(SRC.rglob("*.py")):
        if path.relative_to(SRC).as_posix().startswith("obs/"):
            continue
        for lineno, message in check_file(path):
            failures.append(f"{path.relative_to(SRC.parents[1])}:"
                            f"{lineno}: {message}")
    for line in failures:
        print(line, file=sys.stderr)
    if failures:
        print(f"check_obs: {len(failures)} violation(s)", file=sys.stderr)
        return 1
    print("check_obs: ok", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(run())
