#!/usr/bin/env python
"""Lint: telemetry lives in ``repro.obs``, not in ad-hoc counter dicts.

Before the unified observability layer, each layer grew its own
telemetry (``SimCounters`` in the simulator, shim-event tallies in the
platform, health/queue stats on the boxes).  This check keeps it from
growing back: outside ``src/repro/obs/``, modules may not

- define a class whose name says it is a telemetry container
  (``*Counters``, ``*Telemetry``, ``*Tally``, ``*MetricsRegistry``), or
- bind a module-level ``COUNTERS`` / ``METRICS`` / ``TELEMETRY``-style
  global to a fresh container.

Allowlisted: ``repro.netsim.simulator``'s ``SimCounters``/``COUNTERS``
pair, which survives as a *deprecated facade* over ``repro.obs.METRICS``
for old callers (it holds no state of its own).

Run from the repo root::

    python tools/check_obs.py          # exit 1 on violations

Also exercised by the tier-1 suite (``tests/test_obs.py``) and the CI
lint job.
"""

from __future__ import annotations

import ast
import pathlib
import re
import sys
from typing import List, Tuple

SRC = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"

#: Class names that read as ad-hoc telemetry containers.
CLASS_PATTERN = re.compile(
    r"(Counters|Telemetry|Tally|MetricsRegistry)$")

#: Module-level globals that read as telemetry singletons.
GLOBAL_PATTERN = re.compile(r"^(COUNTERS|METRICS|TELEMETRY|STATS)$")

#: (module relative to src/repro, symbol) pairs that may stay: the
#: simulator's deprecated SimCounters facade over repro.obs.METRICS.
ALLOWLIST = {
    ("netsim/simulator.py", "SimCounters"),
    ("netsim/simulator.py", "COUNTERS"),
    # Hadoop-style *job* counters: domain data of the modelled
    # application (the paper's MapReduce workload), not repo telemetry.
    ("apps/hadoop/job.py", "Counters"),
}


def check_file(path: pathlib.Path) -> List[Tuple[int, str]]:
    rel = path.relative_to(SRC).as_posix()
    problems: List[Tuple[int, str]] = []
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    for node in tree.body:
        if isinstance(node, ast.ClassDef) \
                and CLASS_PATTERN.search(node.name) \
                and (rel, node.name) not in ALLOWLIST:
            problems.append((
                node.lineno,
                f"class {node.name!r} looks like an ad-hoc telemetry "
                f"container; use repro.obs.METRICS instead",
            ))
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) \
                    and GLOBAL_PATTERN.match(target.id) \
                    and (rel, target.id) not in ALLOWLIST:
                problems.append((
                    node.lineno,
                    f"module-level {target.id!r} looks like a telemetry "
                    f"singleton; register metrics on repro.obs.METRICS",
                ))
    return problems


def run() -> int:
    failures = []
    for path in sorted(SRC.rglob("*.py")):
        if path.relative_to(SRC).as_posix().startswith("obs/"):
            continue
        for lineno, message in check_file(path):
            failures.append(f"{path.relative_to(SRC.parents[1])}:"
                            f"{lineno}: {message}")
    for line in failures:
        print(line, file=sys.stderr)
    if failures:
        print(f"check_obs: {len(failures)} violation(s)", file=sys.stderr)
        return 1
    print("check_obs: ok", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(run())
