"""Transparent socket interception (§3.2.2): zero application changes.

The same application function -- workers `connect()` to the master and
`send()` partial results, the master gathers one response per worker --
runs twice: once on the plain socket factory, once on the NetAgg
factory.  The application code cannot tell the difference, but with the
NetAgg factory the bytes flow through agg boxes, the master receives a
single aggregated response plus empty frames, and the final merged
results are byte-identical.

Run:  python examples/transparent_shim.py
"""

from repro.aggbox.functions import TopKFunction
from repro.aggregation import deploy_boxes
from repro.core import NetAggPlatform, NetAggSocketFactory, SocketFactory
from repro.core.sockets import DATA_PORT
from repro.topology import ThreeTierParams, three_tier
from repro.wire.records import (
    SearchResult,
    decode_search_results,
    encode_search_results,
)

MASTER = "host:0"
WORKERS = ["host:1", "host:4", "host:8", "host:12"]


def application(factory):
    """The unmodified partition/aggregation application."""
    # Workers produce and send partial results.
    for i, host in enumerate(WORKERS):
        results = [SearchResult(i * 10 + j, float(i * 10 + j))
                   for j in range(5)]
        conn = factory.connect(host, MASTER, DATA_PORT)
        conn.send_frame(encode_search_results(results))
        conn.close()
    # The master gathers responses and merges (empty frames are noise).
    merger = TopKFunction(k=3)
    inbox = factory.endpoint(MASTER)
    gathered, responses = [], 0
    while True:
        item = inbox.recv(DATA_PORT)
        if item is None:
            break
        responses += 1
        _, payload = item
        if payload:
            gathered.append(decode_search_results(payload))
    return merger.merge(gathered), responses, len(gathered)


def main():
    plain_result, plain_responses, plain_data = application(SocketFactory())
    print("plain sockets : "
          f"{plain_responses} responses ({plain_data} with data), "
          f"top docs {[r.doc_id for r in plain_result]}")

    topo = three_tier(ThreeTierParams(
        n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2,
        hosts_per_tor=4,
    ))
    deploy_boxes(topo)
    platform = NetAggPlatform(topo)
    platform.register_app("solr", TopKFunction(k=3),
                          encode_search_results, decode_search_results)
    shim = NetAggSocketFactory(platform, "solr")
    shim.register_request("req-1", MASTER, WORKERS)

    netagg_result, netagg_responses, netagg_data = application(shim)
    boxes = sum(
        1 for info in platform.topology.all_boxes()
        if platform.box_runtime(info.box_id).last_processed(
            "solr", "req-1@t0")
    )
    print("netagg shim   : "
          f"{netagg_responses} responses ({netagg_data} with data, the "
          f"rest emulated empty), aggregated through {boxes} boxes, "
          f"top docs {[r.doc_id for r in netagg_result]}")

    assert netagg_result == plain_result
    print("\nidentical results; the application never changed")


if __name__ == "__main__":
    main()
