"""Iterative PageRank: on-path aggregation for iterative dataflows.

The paper motivates in-network processing with iterative applications
(graph processing) whose *every* iteration shuffles an aggregatable
contribution stream.  This example runs real PageRank to convergence on
the mini map/reduce engine, shows how much each iteration's shuffle
shrinks under on-path combining, and emulates the end-to-end iteration
time at gigabyte scale.

Run:  python examples/iterative_pagerank.py
"""

from repro.apps.hadoop import MapReduceEngine, generate_graph, pagerank
from repro.apps.hadoop.benchmarks import pagerank_job
from repro.cluster import HadoopEmulation, TestbedConfig
from repro.cluster.hadoop_driver import JobProfile
from repro.report import sparkline
from repro.units import GB


def main():
    graph = generate_graph(400, out_degree=4, seed=13)

    # -- 1. run to convergence -------------------------------------------
    result = pagerank(graph, tolerance=1e-9, max_iterations=100)
    ranks = sorted(result.ranks.items(), key=lambda kv: -kv[1])[:5]
    print(f"PageRank over {len(graph)} nodes: converged in "
          f"{result.iterations} iterations "
          f"(rank mass {sum(result.ranks.values()):.6f})")
    print("  top nodes:", ", ".join(f"n{n}={r:.4f}" for n, r in ranks))
    shuffles = [s.shuffle_bytes / 1e3 for s in result.per_iteration]
    print(f"  per-iteration shuffle: {sparkline(shuffles)} "
          f"(~{shuffles[0]:.0f} KB each, "
          f"{result.total_shuffle_bytes / 1e3:.0f} KB total)")

    # -- 2. what does on-path combining save per iteration? ---------------
    engine = MapReduceEngine()
    splits = [graph[i::8] for i in range(8)]
    job = pagerank_job()
    _, plain = engine.run(job, splits, use_combiner=False)
    _, combined = engine.run(job, splits, on_path_levels=3,
                             use_combiner=False)
    print(f"\none iteration, 8 mappers: shuffle "
          f"{plain.shuffle_bytes / 1e3:.0f} KB plain -> "
          f"{combined.shuffle_bytes / 1e3:.0f} KB after 3 on-path levels "
          f"({plain.shuffle_bytes / combined.shuffle_bytes:.1f}x smaller)")

    # -- 3. iteration time at scale ---------------------------------------
    measured_alpha = max(min(plain.output_ratio, 1.0), 1e-6)
    profile = JobProfile("PR", output_ratio=measured_alpha,
                         cpu_factor=1.0, aggregatable=True)
    emulation = HadoopEmulation(TestbedConfig())
    plain_run = emulation.run(profile, 4 * GB, use_netagg=False)
    netagg_run = emulation.run(profile, 4 * GB, use_netagg=True)
    speedup = (plain_run.shuffle_reduce_seconds
               / netagg_run.shuffle_reduce_seconds)
    print(f"\nemulated 4 GB iteration (measured alpha "
          f"{measured_alpha:.1%}): shuffle+reduce "
          f"{plain_run.shuffle_reduce_seconds:.1f} s plain vs "
          f"{netagg_run.shuffle_reduce_seconds:.1f} s on NetAgg "
          f"({speedup:.1f}x)")
    total_saved = (plain_run.shuffle_reduce_seconds
                   - netagg_run.shuffle_reduce_seconds) * result.iterations
    print(f"over the {result.iterations}-iteration run: "
          f"~{total_saved:.0f} s saved")


if __name__ == "__main__":
    main()
