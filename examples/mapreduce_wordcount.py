"""Map/reduce with on-path combining (the paper's Hadoop case study).

Runs a *real* WordCount job through the mini map/reduce engine, shows
how each on-path aggregation level shrinks the shuffle (the per-hop
traffic reduction NetAgg banks on), pushes the same combiner through the
NetAgg platform's agg boxes for a distributed execution, and finally
emulates shuffle+reduce time at gigabyte scale (Fig. 22/24 conditions).

Run:  python examples/mapreduce_wordcount.py
"""

from repro.aggbox.functions import CombinerFunction
from repro.aggregation import deploy_boxes
from repro.apps.hadoop import MapReduceEngine, generate_text, wordcount_job
from repro.cluster import HadoopEmulation, TestbedConfig
from repro.cluster.hadoop_driver import measure_job_profile
from repro.core import NetAggPlatform
from repro.topology import ThreeTierParams, three_tier
from repro.units import GB
from repro.wire.records import KeyValue, decode_kv_stream, encode_kv_stream

N_MAPPERS = 8


def main():
    job = wordcount_job()
    text = generate_text(1200, vocabulary=300, seed=5)
    split_size = len(text) // N_MAPPERS
    splits = [text[i * split_size:(i + 1) * split_size]
              for i in range(N_MAPPERS)]

    # -- 1. real execution with per-hop combining -------------------------
    engine = MapReduceEngine()
    result, stats = engine.run(job, splits, on_path_levels=3)
    print(f"WordCount over {len(text)} lines, {N_MAPPERS} mappers")
    print(f"  map output    {stats.map_output_bytes / 1e3:8.1f} KB")
    for level, nbytes in enumerate(stats.level_bytes):
        print(f"  agg level {level}   {nbytes / 1e3:8.1f} KB")
    print(f"  final output  {stats.output_bytes / 1e3:8.1f} KB "
          f"(ratio {stats.output_ratio:.2%})")
    top = sorted(result.items(), key=lambda kv: -kv[1])[:5]
    print("  top words:", ", ".join(f"{w}={c}" for w, c in top))

    # -- 2. the same combiner distributed over agg boxes ------------------
    topo = three_tier(ThreeTierParams(
        n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2,
        hosts_per_tor=8,
    ))
    deploy_boxes(topo)
    platform = NetAggPlatform(topo)
    platform.register_app("hadoop", CombinerFunction(),
                          encode_kv_stream, decode_kv_stream)
    worker_items = []
    for i, split in enumerate(splits):
        local_counts, _ = engine.run(job, [split])  # mapper + combiner
        keyed = [(key, KeyValue(key, value))
                 for key, value in local_counts.items()]
        worker_items.append((f"host:{i * 4 + 1}", keyed))
    outcome = platform.execute_batch("hadoop", "wc-job", "host:0",
                                     worker_items, n_trees=2)
    distributed = {kv.key: kv.value for kv in outcome.value}
    assert distributed == result, "on-path result must equal local run"
    print(f"\nvia NetAgg: identical counts through "
          f"{len(set(outcome.boxes_used))} agg boxes, "
          f"{outcome.bytes_into_boxes / 1e3:.1f} KB into boxes")

    # -- 3. gigabyte-scale emulation --------------------------------------
    profile = measure_job_profile(job, splits, use_combiner=False)
    emulation = HadoopEmulation(TestbedConfig())
    print(f"\nmeasured output ratio {profile.output_ratio:.2%}; "
          "emulated shuffle+reduce at scale:")
    for size in (2, 8, 16):
        plain = emulation.run(profile, size * GB, use_netagg=False)
        netagg = emulation.run(profile, size * GB, use_netagg=True)
        speedup = (plain.shuffle_reduce_seconds
                   / netagg.shuffle_reduce_seconds)
        print(f"  {size:2d} GB: plain {plain.shuffle_reduce_seconds:7.1f} s"
              f"  netagg {netagg.shuffle_reduce_seconds:6.1f} s"
              f"  ({speedup:.1f}x)")


if __name__ == "__main__":
    main()
