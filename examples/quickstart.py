"""Quickstart: on-path aggregation in fifty lines.

Builds a small three-tier data centre, attaches agg boxes to every
switch, runs the same partition/aggregation workload under rack-level
aggregation and under NetAgg, and prints the flow-completion-time
comparison -- the paper's headline effect.

Run:  python examples/quickstart.py
"""

from repro.aggregation import NetAggStrategy, RackLevelStrategy, deploy_boxes
from repro.netsim import FlowSim
from repro.netsim.metrics import fct_summary, relative_p99
from repro.topology import ThreeTierParams, three_tier
from repro.units import MB
from repro.workload import WorkloadParams, generate_workload

TOPOLOGY = ThreeTierParams(
    n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=4,
    hosts_per_tor=32, oversubscription=4.0,
)
WORKLOAD = WorkloadParams(
    n_flows=300, mean_flow_size=1 * MB, pareto_shape=1.5,
    max_flow_size=10 * MB, aggregatable_fraction=0.4,
    worker_pareto_shape=1.0, max_workers=64,
)


def run(strategy, with_boxes):
    topo = three_tier(TOPOLOGY)
    if with_boxes:
        deploy_boxes(topo)  # one agg box per switch, 10G link, 9.2G proc
    workload = generate_workload(topo, WORKLOAD, seed=42)
    sim = FlowSim(topo.network)
    sim.add_flows(strategy.plan(workload, topo))
    return sim.run()


def main():
    print(f"topology: {TOPOLOGY.n_hosts} hosts, "
          f"{TOPOLOGY.oversubscription:.0f}:1 over-subscription")
    rack = run(RackLevelStrategy(), with_boxes=False)
    netagg = run(NetAggStrategy(), with_boxes=True)

    for name, result in (("rack-level", rack), ("netagg", netagg)):
        summary = fct_summary(result)
        print(f"{name:>10}: median FCT {summary.median * 1e3:7.1f} ms   "
              f"p99 {summary.p99 * 1e3:7.1f} ms   "
              f"({summary.count} flows)")
    ratio = relative_p99(netagg, rack)
    print(f"\nNetAgg 99th-percentile FCT is {ratio:.2f}x rack-level "
          f"({(1 - ratio) * 100:.0f}% reduction)")


if __name__ == "__main__":
    main()
