"""Distributed search on NetAgg (the paper's Apache Solr case study).

Builds a sharded full-text search engine over a synthetic Wikipedia-like
corpus, registers its top-k merge on the NetAgg platform, and runs real
queries end-to-end *through the agg boxes*: partial results are
serialised, chunked, streamed into boxes, merged up the aggregation
tree, and delivered to the frontend with empty-result emulation --
then checked for exact equality against a plain deployment.

Finishes with the testbed emulation behind Figs. 16/17: throughput and
tail latency, plain vs NetAgg.

Run:  python examples/search_engine.py
"""

from repro.aggregation import deploy_boxes
from repro.apps.solr import (
    SearchBackend,
    SearchFrontend,
    generate_corpus,
    make_topk_wrapper,
    shard_corpus,
)
from repro.apps.solr.corpus import random_queries
from repro.cluster import SolrEmulation, TestbedConfig
from repro.cluster.solr_driver import SolrEmulationParams
from repro.core import NetAggPlatform
from repro.topology import ThreeTierParams, three_tier

N_BACKENDS = 8
TOP_K = 10


def build_search_cluster():
    docs = generate_corpus(400, seed=11)
    shards = shard_corpus(docs, N_BACKENDS)
    backends = [SearchBackend(f"backend:{i}", shard)
                for i, shard in enumerate(shards)]
    return docs, SearchFrontend(backends, k=TOP_K)


def build_platform():
    topo = three_tier(ThreeTierParams(
        n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2,
        hosts_per_tor=8,
    ))
    deploy_boxes(topo)
    platform = NetAggPlatform(topo)
    function, serialise, deserialise = make_topk_wrapper(k=TOP_K)
    platform.register_app("solr", function, serialise, deserialise)
    return platform


def main():
    docs, frontend = build_search_cluster()
    platform = build_platform()
    # Backends live on distinct hosts; the frontend on host:0.
    backend_hosts = [f"host:{i * 4 + 1}" for i in range(N_BACKENDS)]

    print(f"corpus: {len(docs)} documents over {N_BACKENDS} shards\n")
    queries = random_queries(docs, 5, seed=3)
    for i, query in enumerate(queries):
        plain = frontend.search(query)

        def via_netagg(q, partials, i=i):
            outcome = platform.execute_request(
                "solr", f"query-{i}", "host:0",
                list(zip(backend_hosts, partials)), n_trees=2,
            )
            slots = [outcome.value] + [None] * (len(partials) - 1)
            return slots

        on_path = frontend.search_via(query, via_netagg)
        match = "ok" if on_path == plain else "MISMATCH"
        top = on_path[0] if on_path else None
        print(f"[{match}] {query!r:45s} -> "
              f"{len(on_path)} results, best doc "
              f"{top.doc_id if top else '-'}")
        assert on_path == plain

    print("\n-- testbed emulation (Figs. 16/17 conditions) --")
    for clients in (10, 30, 70):
        plain = SolrEmulation(TestbedConfig(), SolrEmulationParams(
            n_clients=clients, duration=8.0)).run()
        netagg = SolrEmulation(TestbedConfig(), SolrEmulationParams(
            n_clients=clients, duration=8.0, use_netagg=True)).run()
        print(f"{clients:3d} clients: plain {plain.throughput_gbps:5.2f} "
              f"Gbps / p99 {plain.p99_latency:6.3f} s   |   "
              f"netagg {netagg.throughput_gbps:5.2f} Gbps / "
              f"p99 {netagg.p99_latency:6.3f} s")


if __name__ == "__main__":
    main()
