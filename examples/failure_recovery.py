"""Failure and straggler handling (§3.1 of the paper).

Shows the full recovery story on live requests:

1. a request aggregates through healthy boxes;
2. we kill each box that participated -- the trees rewire around it
   (children re-parented to the detector node) and the result stays
   byte-identical;
3. the heartbeat failure detector flags an overdue box;
4. the straggler monitor redirects a slow box per-request and declares
   it failed after repeated offences;
5. duplicate suppression: a recovering child resending an already-
   processed partial result is dropped by the box runtime.

Run:  python examples/failure_recovery.py
"""

from repro.aggbox.functions import TopKFunction
from repro.aggregation import deploy_boxes
from repro.core import FailureDetector, NetAggPlatform, StragglerMonitor
from repro.core.straggler import StragglerPolicy
from repro.topology import ThreeTierParams, three_tier
from repro.wire.records import (
    SearchResult,
    decode_search_results,
    encode_search_results,
)


def build_platform():
    topo = three_tier(ThreeTierParams(
        n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2,
        hosts_per_tor=4,
    ))
    deploy_boxes(topo)
    platform = NetAggPlatform(topo)
    platform.register_app("solr", TopKFunction(k=3),
                          encode_search_results, decode_search_results)
    return platform


PARTIALS = [
    (host, [SearchResult(base * 10 + j, float(base * 10 + j))
            for j in range(4)])
    for base, host in enumerate(("host:1", "host:5", "host:9", "host:13"))
]


def main():
    platform = build_platform()
    healthy = platform.execute_request("solr", "req", "host:0", PARTIALS)
    print("healthy run:", [r.doc_id for r in healthy.value],
          "via", len(healthy.boxes_used), "boxes")

    print("\n-- killing every participating box, one at a time --")
    for box_id in healthy.boxes_used:
        fresh = build_platform()
        fresh.fail_box(box_id)
        outcome = fresh.execute_request("solr", "req", "host:0", PARTIALS)
        assert outcome.value == healthy.value
        assert box_id not in outcome.boxes_used
        print(f"  {box_id:22s} failed -> rerouted through "
              f"{len(outcome.boxes_used)} boxes, result identical")

    print("\n-- heartbeat failure detection --")
    detector = FailureDetector(timeout=1.0)
    detector.watch("box:tor:0:0", now=0.0)
    detector.watch("box:core:0:0", now=0.0)
    detector.heartbeat("box:tor:0:0", now=2.0)
    overdue = detector.missing(now=2.5)
    print("  overdue at t=2.5s:", overdue)
    assert overdue == ["box:core:0:0"]

    print("\n-- straggler mitigation --")
    monitor = StragglerMonitor(StragglerPolicy(latency_threshold=0.5,
                                               repeat_limit=3))
    for request in ("r1", "r2", "r3"):
        decision = monitor.observe("box:aggr:0:0:0", request, latency=2.0)
        print(f"  slow for {request}: decision = {decision}")
    assert monitor.permanently_failed() == ["box:aggr:0:0:0"]

    print("\n-- duplicate suppression on recovery --")
    runtime = platform.box_runtime(healthy.boxes_used[-1])
    request_key = "req@t0"
    processed = runtime.last_processed("solr", request_key)
    resend = runtime.submit_partial("solr", request_key,
                                    processed[0], PARTIALS[0][1])
    print(f"  resend from {processed[0]!r} after recovery ->",
          "dropped" if resend is None else "ACCEPTED (bug!)")
    assert resend is None

    print("\n-- mid-request failure: boxes die while partials are in "
          "flight --")
    from repro.aggbox.box import AggBoxRuntime, AppBinding
    from repro.core import InFlightRequest, TreeBuilder

    fresh = build_platform()
    topo = fresh.topology
    function = TopKFunction(k=3)
    runtimes = {}
    for info in topo.all_boxes():
        rt = AggBoxRuntime(info.box_id)
        rt.register_app(AppBinding(
            app="solr", function=function,
            deserialise=decode_search_results,
            serialise=encode_search_results,
        ))
        runtimes[info.box_id] = rt
    tree = TreeBuilder(topo).build("live-req", "host:0",
                                   [h for h, _ in PARTIALS])
    request = InFlightRequest(
        tree, runtimes, "solr", "live-req",
        [p for _, p in PARTIALS],
        merge=lambda parts: function.merge(parts),
    )
    request.announce_all()
    request.deliver_worker(0)
    request.deliver_worker(1)
    victim = request.tree.worker_entry[0] or sorted(request.tree.boxes)[0]
    log = request.fail_box(victim)
    print(f"  {victim} died mid-request; replayed "
          f"{log.replayed_sources or 'nothing (all processed)'}")
    request.deliver_worker(2)
    request.deliver_worker(3)
    recovered = request.finish()
    expected = function.merge([p for _, p in PARTIALS])
    assert recovered == expected
    print("  final result identical to the failure-free run")
    print("\nall recovery invariants held")


if __name__ == "__main__":
    main()
