"""Distributed model training with on-path gradient aggregation.

The paper's intro lists deep learning frameworks among the
partition/aggregation applications NetAgg targets: data-parallel
training sums per-worker gradients every step.  This example trains a
linear model twice -- gradients merged centrally vs through the NetAgg
platform's aggregation trees -- and shows the learned weights and loss
curves agree to rounding error while the master receives one aggregated
vector per step instead of one per worker.

Run:  python examples/gradient_aggregation.py
"""

from repro.aggregation import deploy_boxes
from repro.apps.mlgrad import (
    make_regression_data,
    netagg_aggregator,
    train,
)
from repro.core import NetAggPlatform
from repro.report import sparkline
from repro.topology import ThreeTierParams, three_tier

TRUE_WEIGHTS = [1.5, -2.0, 0.75, 0.0]
WORKER_HOSTS = ["host:1", "host:4", "host:8", "host:12"]


def main():
    rows = make_regression_data(800, TRUE_WEIGHTS, noise=0.05, seed=9)
    shards = [rows[i::4] for i in range(4)]

    central = train(shards, n_features=len(TRUE_WEIGHTS),
                    iterations=120, learning_rate=0.1)

    topo = three_tier(ThreeTierParams(
        n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2,
        hosts_per_tor=4,
    ))
    deploy_boxes(topo)
    platform = NetAggPlatform(topo)
    aggregate = netagg_aggregator(platform, "host:0", WORKER_HOSTS)
    on_path = train(shards, n_features=len(TRUE_WEIGHTS),
                    iterations=120, learning_rate=0.1,
                    aggregate=aggregate)

    print("true weights   :", [f"{w:+.3f}" for w in TRUE_WEIGHTS])
    print("central        :", [f"{w:+.3f}" for w in central.weights],
          f"loss {central.final_loss:.5f}")
    print("via agg boxes  :", [f"{w:+.3f}" for w in on_path.weights],
          f"loss {on_path.final_loss:.5f}")
    drift = max(abs(a - b)
                for a, b in zip(central.weights, on_path.weights))
    print(f"max weight drift between paths: {drift:.2e} "
          "(float reordering only)")
    print("loss curve     :", sparkline(on_path.losses[:60]))

    boxes_used = sum(
        1 for info in platform.topology.all_boxes()
        if platform.box_runtime(info.box_id).last_processed(
            "mlgrad", "grad-step-0@t0")
    )
    print(f"\neach of the 120 steps aggregated 4 gradients through "
          f"{boxes_used} agg boxes; the master received 1 vector/step")
    assert drift < 1e-9


if __name__ == "__main__":
    main()
