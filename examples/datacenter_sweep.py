"""Data-centre parameter sweeps (Figs. 8 and 11 at bench scale).

Regenerates two of the paper's central simulation results and prints
them as tables: how NetAgg's advantage over rack-level aggregation (and
the edge-tree baselines) varies with the aggregation output ratio and
with network over-subscription.

Run:  python examples/datacenter_sweep.py        (~1 minute)
"""

from repro.experiments import BENCH
from repro.experiments import fig08_output_ratio, fig11_oversub


def main():
    print("Sweeping output ratio alpha (Fig. 8)...\n")
    print(fig08_output_ratio.run(scale=BENCH).to_text())
    print("\nvalues < 1.0 beat rack-level aggregation; note how chain "
          "loses its edge as alpha grows\n")

    print("Sweeping over-subscription (Fig. 11)...\n")
    print(fig11_oversub.run(scale=BENCH).to_text())
    print("\nNetAgg wins at every over-subscription, including full "
          "bisection (the master's inbound link remains a bottleneck "
          "that on-path aggregation removes); see EXPERIMENTS.md for "
          "the extreme-over-subscription caveat")


if __name__ == "__main__":
    main()
