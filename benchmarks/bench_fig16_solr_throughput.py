"""Fig. 16: Solr throughput vs clients.

Regenerates the experiment and prints the series.  Run with
``pytest benchmarks/ --benchmark-only``.
"""

from repro.experiments import fig16_solr_throughput as experiment


def bench_fig16_solr_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
