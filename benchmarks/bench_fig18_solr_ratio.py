"""Fig. 18: Solr throughput vs output ratio.

Regenerates the experiment and prints the series.  Run with
``pytest benchmarks/ --benchmark-only``.
"""

from repro.experiments import fig18_solr_ratio as experiment


def bench_fig18_solr_ratio(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
