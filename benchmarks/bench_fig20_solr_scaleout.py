"""Fig. 20: agg box scale-out (categorise).

Regenerates the experiment and prints the series.  Run with
``pytest benchmarks/ --benchmark-only``.
"""

from repro.experiments import fig20_solr_scaleout as experiment


def bench_fig20_solr_scaleout(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
