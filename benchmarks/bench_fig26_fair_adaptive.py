"""Fig. 26: adaptive WFQ CPU sharing.

Regenerates the experiment and prints the series.  Run with
``pytest benchmarks/ --benchmark-only``.
"""

from repro.experiments import fig26_fair_adaptive as experiment


def bench_fig26_fair_adaptive(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
