"""Standalone entry point for the benchmark harness.

Times every experiment ``benchmarks/bench_*.py`` covers (via the
registry) and writes ``BENCH_netsim.json``::

    PYTHONPATH=src python benchmarks/harness.py
    PYTHONPATH=src python benchmarks/harness.py --scale quick --profile

Equivalent to ``python -m repro bench``; see :mod:`repro.bench`.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import SCALES, run_bench


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="bench")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default="BENCH_netsim.json")
    parser.add_argument("--only", nargs="*", metavar="EXPERIMENT")
    parser.add_argument("--profile", action="store_true")
    args = parser.parse_args(argv)
    return run_bench(scale_name=args.scale, out=args.out,
                     names=args.only or None, seed=args.seed,
                     profile=args.profile)


if __name__ == "__main__":
    sys.exit(main())
