"""Ablation: NetAgg multi-tree gains on a k-ary fat-tree.

Regenerates the experiment and prints the series.  Run with
``pytest benchmarks/ --benchmark-only``.
"""

from repro.experiments import ablation_fattree as experiment


def bench_ablation_fattree(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
