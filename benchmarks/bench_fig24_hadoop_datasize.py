"""Fig. 24: Hadoop WC vs intermediate data size.

Regenerates the experiment and prints the series.  Run with
``pytest benchmarks/ --benchmark-only``.
"""

from repro.experiments import fig24_hadoop_datasize as experiment


def bench_fig24_hadoop_datasize(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
