"""Ablation: co-located merge latency under fixed vs adaptive WFQ.

Regenerates the experiment and prints the series.  Run with
``pytest benchmarks/ --benchmark-only``.
"""

from repro.experiments import ablation_colocation as experiment


def bench_ablation_colocation(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
