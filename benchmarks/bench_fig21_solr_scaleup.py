"""Fig. 21: throughput vs CPU cores.

Regenerates the experiment and prints the series.  Run with
``pytest benchmarks/ --benchmark-only``.
"""

from repro.experiments import fig21_solr_scaleup as experiment


def bench_fig21_solr_scaleup(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
