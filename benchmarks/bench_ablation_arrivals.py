"""Ablation: NetAgg under different flow arrival patterns.

Regenerates the experiment and prints the series.  Run with
``pytest benchmarks/ --benchmark-only``.
"""

from repro.experiments import BENCH
from repro.experiments import ablation_arrivals as experiment


def bench_ablation_arrivals(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale=BENCH), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
