"""Ablation: NetAgg under different flow arrival patterns.

Regenerates the experiment through the registry at BENCH scale and
prints the series.  Run with ``pytest benchmarks/ --benchmark-only``;
``benchmarks/harness.py`` (or ``python -m repro bench``) times the whole
catalogue and records BENCH_netsim.json.
"""

from repro.experiments import BENCH, load


def bench_ablation_arrivals(benchmark):
    exp = load("ablation_arrivals")
    result = benchmark.pedantic(
        lambda: exp.run(scale=BENCH), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
