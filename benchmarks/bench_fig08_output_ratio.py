"""Fig. 8: relative FCT vs output ratio alpha.

Regenerates the experiment through the registry at BENCH scale and
prints the series.  Run with ``pytest benchmarks/ --benchmark-only``;
``benchmarks/harness.py`` (or ``python -m repro bench``) times the whole
catalogue and records BENCH_netsim.json.
"""

from repro.experiments import BENCH, load


def bench_fig08_output_ratio(benchmark):
    exp = load("fig08_output_ratio")
    result = benchmark.pedantic(
        lambda: exp.run(scale=BENCH), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
