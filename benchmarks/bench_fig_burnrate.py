"""Burn-rate alerting: alert lead time vs SLO budget exhaustion.

Regenerates the experiment through the registry at BENCH scale and
prints the series.  Run with ``pytest benchmarks/ --benchmark-only``;
``benchmarks/harness.py`` (or ``python -m repro bench``) times the whole
catalogue and records BENCH_netsim.json.
"""

from repro.experiments import BENCH, load


def bench_fig_burnrate(benchmark):
    exp = load("fig_burnrate")
    result = benchmark.pedantic(
        lambda: exp.run(scale=BENCH), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
