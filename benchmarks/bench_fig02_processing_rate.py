"""Fig. 2: FCT vs agg-box processing rate (feasibility study).

Regenerates the experiment at BENCH scale and prints the series.  Run
with ``pytest benchmarks/ --benchmark-only``; pass DEFAULT/PAPER scales
through the module's ``main()`` for full-fidelity numbers.
"""

from repro.experiments import BENCH
from repro.experiments import fig02_processing_rate as experiment


def bench_fig02_processing_rate(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale=BENCH), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
