"""Fig. 15: local aggregation tree throughput.

Regenerates the experiment and prints the series.  Run with
``pytest benchmarks/ --benchmark-only``.
"""

from repro.experiments import fig15_localtree as experiment


def bench_fig15_localtree(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
