"""Table 1: application-specific lines of code.

Regenerates the experiment and prints the series.  Run with
``pytest benchmarks/ --benchmark-only``.
"""

from repro.experiments import tab01_loc as experiment


def bench_tab01_loc(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
