"""Fig. 11: relative FCT vs over-subscription.

Regenerates the experiment at BENCH scale and prints the series.  Run
with ``pytest benchmarks/ --benchmark-only``; pass DEFAULT/PAPER scales
through the module's ``main()`` for full-fidelity numbers.
"""

from repro.experiments import BENCH
from repro.experiments import fig11_oversub as experiment


def bench_fig11_oversub(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale=BENCH), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
