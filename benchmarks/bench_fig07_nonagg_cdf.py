"""Fig. 7: CDF of FCT, non-aggregatable traffic.

Regenerates the experiment at BENCH scale and prints the series.  Run
with ``pytest benchmarks/ --benchmark-only``; pass DEFAULT/PAPER scales
through the module's ``main()`` for full-fidelity numbers.
"""

from repro.experiments import BENCH
from repro.experiments import fig07_nonagg_cdf as experiment


def bench_fig07_nonagg_cdf(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale=BENCH), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
