"""Fig. 17: Solr 99th-pct latency vs clients.

Regenerates the experiment and prints the series.  Run with
``pytest benchmarks/ --benchmark-only``.
"""

from repro.experiments import fig17_solr_latency as experiment


def bench_fig17_solr_latency(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
