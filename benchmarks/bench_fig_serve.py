"""fig_serve: per-tenant serving goodput and p99 vs offered load.

Regenerates the experiment through the registry at BENCH scale and
prints the series.  Run with ``pytest benchmarks/ --benchmark-only``;
``benchmarks/harness.py`` (or ``python -m repro bench``) times the whole
catalogue and records BENCH_netsim.json.
"""

from repro.experiments import BENCH, load


def bench_fig_serve(benchmark):
    exp = load("fig_serve")
    result = benchmark.pedantic(
        lambda: exp.run(scale=BENCH, loads=(0.5, 2.0), duration=1.0),
        rounds=1, iterations=1,
    )
    assert result.rows
    print()
    print(result.to_text())
