"""Fig. 22: Hadoop benchmark jobs.

Regenerates the experiment and prints the series.  Run with
``pytest benchmarks/ --benchmark-only``.
"""

from repro.experiments import fig22_hadoop_jobs as experiment


def bench_fig22_hadoop_jobs(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
