"""fig_partition: availability and completeness vs partition severity.

Regenerates the experiment through the registry at BENCH scale and
prints the series.  Run with ``pytest benchmarks/ --benchmark-only``;
``benchmarks/harness.py`` (or ``python -m repro bench``) times the whole
catalogue and records BENCH_netsim.json.
"""

from repro.experiments import BENCH, load


def bench_fig_partition(benchmark):
    exp = load("fig_partition")
    result = benchmark.pedantic(
        lambda: exp.run(scale=BENCH),
        rounds=1, iterations=1,
    )
    assert result.rows
    print()
    print(result.to_text())
