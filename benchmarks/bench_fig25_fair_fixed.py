"""Fig. 25: fixed-weight WFQ CPU sharing.

Regenerates the experiment and prints the series.  Run with
``pytest benchmarks/ --benchmark-only``.
"""

from repro.experiments import fig25_fair_fixed as experiment


def bench_fig25_fair_fixed(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
