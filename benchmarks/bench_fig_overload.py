"""fig_overload: goodput and p99 FCT vs offered load under overload.

Regenerates the experiment through the registry at BENCH scale and
prints the series.  Run with ``pytest benchmarks/ --benchmark-only``;
``benchmarks/harness.py`` (or ``python -m repro bench``) times the whole
catalogue and records BENCH_netsim.json.
"""

from repro.experiments import BENCH, load


def bench_fig_overload(benchmark):
    exp = load("fig_overload")
    result = benchmark.pedantic(
        lambda: exp.run(scale=BENCH), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
