"""Fig. 19: Solr two-rack scaling.

Regenerates the experiment and prints the series.  Run with
``pytest benchmarks/ --benchmark-only``.
"""

from repro.experiments import fig19_solr_tworack as experiment


def bench_fig19_solr_tworack(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
