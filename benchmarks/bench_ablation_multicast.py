"""Extension: on-path multicast vs unicast fan-out.

Regenerates the experiment and prints the series.  Run with
``pytest benchmarks/ --benchmark-only``.
"""

from repro.experiments import ablation_multicast as experiment


def bench_ablation_multicast(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
