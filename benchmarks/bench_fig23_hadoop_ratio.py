"""Fig. 23: Hadoop WC vs output ratio.

Regenerates the experiment and prints the series.  Run with
``pytest benchmarks/ --benchmark-only``.
"""

from repro.experiments import fig23_hadoop_ratio as experiment


def bench_fig23_hadoop_ratio(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
