"""fig_failures: FCT degradation and exactness under injected faults.

Regenerates the experiment at BENCH scale and prints the series.  Run
with ``pytest benchmarks/ --benchmark-only``; pass DEFAULT/PAPER scales
through the module's ``main()`` for full-fidelity numbers.
"""

from repro.experiments import BENCH
from repro.experiments import fig_failures as experiment


def bench_fig_failures(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale=BENCH), rounds=1, iterations=1
    )
    assert result.rows
    assert all(row["exact"] for row in result.rows)
    print()
    print(result.to_text())
