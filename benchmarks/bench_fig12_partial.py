"""Fig. 12: partial NetAgg deployments.

Regenerates the experiment through the registry at BENCH scale and
prints the series.  Run with ``pytest benchmarks/ --benchmark-only``;
``benchmarks/harness.py`` (or ``python -m repro bench``) times the whole
catalogue and records BENCH_netsim.json.
"""

from repro.experiments import BENCH, load


def bench_fig12_partial(benchmark):
    exp = load("fig12_partial")
    result = benchmark.pedantic(
        lambda: exp.run(scale=BENCH), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
