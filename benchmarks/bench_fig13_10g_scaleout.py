"""Fig. 13: 10G network with box scale-out.

Regenerates the experiment at BENCH scale and prints the series.  Run
with ``pytest benchmarks/ --benchmark-only``; pass DEFAULT/PAPER scales
through the module's ``main()`` for full-fidelity numbers.
"""

from repro.experiments import BENCH
from repro.experiments import fig13_10g_scaleout as experiment


def bench_fig13_10g_scaleout(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale=BENCH), rounds=1, iterations=1
    )
    assert result.rows
    print()
    print(result.to_text())
