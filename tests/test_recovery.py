"""Tests for mid-request failure recovery (the full §3.1 protocol)."""

import pytest

from repro.aggbox.box import AggBoxRuntime, AppBinding
from repro.aggbox.functions import SumFunction
from repro.aggregation import deploy_boxes
from repro.core.recovery import InFlightRequest
from repro.core.tree import TreeBuilder
from repro.topology import ThreeTierParams, three_tier
from repro.wire.serializer import read_float, write_float

SMALL = ThreeTierParams(
    n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2, hosts_per_tor=4
)
WORKERS = ["host:4", "host:5", "host:8", "host:12"]
VALUES = [1.0, 2.0, 4.0, 8.0]
EXPECTED_SUM = 15.0


def make_request():
    topo = three_tier(SMALL)
    deploy_boxes(topo)
    tree = TreeBuilder(topo).build("req", "host:0", WORKERS)
    function = SumFunction()
    boxes = {}
    for info in topo.all_boxes():
        runtime = AggBoxRuntime(info.box_id)
        runtime.register_app(AppBinding(
            app="sum", function=function,
            deserialise=lambda b: read_float(b)[0],
            serialise=write_float,
        ))
        boxes[info.box_id] = runtime
    request = InFlightRequest(
        tree, boxes, "sum", "req", VALUES,
        merge=lambda parts: function.merge(parts),
    )
    request.announce_all()
    return request


def merge(parts):
    return SumFunction().merge(parts)


class TestNoFailure:
    def test_clean_run(self):
        request = make_request()
        request.deliver_all_workers()
        assert request.finish(merge) == pytest.approx(EXPECTED_SUM)
        assert request.logs == []


class TestFailureBeforeDelivery:
    @pytest.mark.parametrize("which_box", range(5))
    def test_fail_any_box_before_workers_send(self, which_box):
        request = make_request()
        boxes = sorted(request.tree.boxes)
        if which_box >= len(boxes):
            pytest.skip("tree smaller than index")
        log = request.fail_box(boxes[which_box])
        request.deliver_all_workers()
        assert request.finish(merge) == pytest.approx(EXPECTED_SUM)
        assert log.failed_box == boxes[which_box]


class TestFailureMidRequest:
    def test_fail_entry_box_after_partial_delivery(self):
        """One worker delivered into its entry box, then the box dies:
        that worker's shim must resend to the new target."""
        request = make_request()
        entry = request.tree.worker_entry[0]
        request.deliver_worker(0)
        log = request.fail_box(entry)
        assert "worker:0" in log.replayed_sources
        request.deliver_worker(1)
        request.deliver_worker(2)
        request.deliver_worker(3)
        assert request.finish(merge) == pytest.approx(EXPECTED_SUM)

    def test_fail_after_child_emitted_recomputes(self):
        """A child box emitted into F, then F died: the child's
        aggregate is recomputed from shim-retained data (no loss)."""
        request = make_request()
        # Deliver everything, then fail a mid-tree box whose inputs were
        # consumed and forwarded.
        request.deliver_all_workers()
        mid_boxes = [
            b for b, v in request.tree.boxes.items()
            if v.parent is not None and (v.children or v.direct_workers)
        ]
        target = mid_boxes[0]
        request.fail_box(target)
        assert request.finish(merge) == pytest.approx(EXPECTED_SUM)

    def test_fail_every_box_one_by_one(self):
        request = make_request()
        request.deliver_all_workers()
        while request.tree.boxes:
            victim = sorted(request.tree.boxes)[0]
            request.fail_box(victim)
        assert request.finish(merge) == pytest.approx(EXPECTED_SUM)

    def test_duplicate_suppression_when_data_was_safe(self):
        """If F's aggregate already reached its parent, the children are
        told everything was processed and nothing is resent."""
        request = make_request()
        request.deliver_all_workers()
        # Entry boxes have emitted upward by now; pick one whose parent
        # recorded its aggregate.
        for box_id, vertex in sorted(request.tree.boxes.items()):
            if vertex.parent is None:
                continue
            parent_rt = request._boxes[vertex.parent]
            if parent_rt.has_source("sum", "req@t0", f"box:{box_id}"):
                log = request.fail_box(box_id)
                assert log.replayed_sources == []
                assert log.suppressed_sources
                break
        else:
            pytest.skip("no safely-forwarded box found")
        assert request.finish(merge) == pytest.approx(EXPECTED_SUM)

    def test_root_failure_children_feed_master(self):
        request = make_request()
        request.deliver_all_workers()
        (root,) = request.tree.roots()
        log = request.fail_box(root)
        assert log.detector_node == "master"
        assert request.finish(merge) == pytest.approx(EXPECTED_SUM)

    def test_unknown_box_rejected(self):
        request = make_request()
        with pytest.raises(KeyError):
            request.fail_box("box:ghost")

    def test_value_count_validated(self):
        topo = three_tier(SMALL)
        deploy_boxes(topo)
        tree = TreeBuilder(topo).build("req", "host:0", WORKERS)
        with pytest.raises(ValueError):
            InFlightRequest(tree, {}, "sum", "req", [1.0])


class TestRecoveryProperties:
    """Random interleavings of deliveries and failures preserve the
    aggregate exactly."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(st.lists(st.integers(0, 30), min_size=0, max_size=6),
           st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_random_failures_preserve_sum(self, fail_picks, split):
        request = make_request()
        # Deliver a prefix of workers, fail some boxes, deliver the rest.
        for index in range(split):
            request.deliver_worker(index)
        for pick in fail_picks:
            alive = sorted(request.tree.boxes)
            if not alive:
                break
            request.fail_box(alive[pick % len(alive)])
        for index in range(split, len(VALUES)):
            request.deliver_worker(index)
        assert request.finish(merge) == pytest.approx(EXPECTED_SUM)

    @given(st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_interleaved_failures(self, period):
        request = make_request()
        delivered = 0
        while delivered < len(VALUES):
            request.deliver_worker(delivered)
            delivered += 1
            if delivered % period == 0 and request.tree.boxes:
                victim = sorted(request.tree.boxes)[0]
                request.fail_box(victim)
        assert request.finish(merge) == pytest.approx(EXPECTED_SUM)


class TestMidRequestMigration:
    """migrate_box: §3.1 rewiring with drain-then-cutover semantics."""

    def test_clean_migration_preserves_sum(self):
        request = make_request()
        request.deliver_worker(0)
        victim = request.tree.worker_entry[0]
        assert victim is not None
        log = request.migrate_box(victim)
        assert not log.rolled_back and not log.failed_over
        assert victim not in request.tree.boxes
        assert log.parked_sources == ["worker:0"]
        assert log.replayed_to == log.dest_chain[0]
        for index in (1, 2, 3):
            request.deliver_worker(index)
        assert request.finish(merge) == pytest.approx(EXPECTED_SUM)
        assert request.migrations == [log]

    def test_migrating_idle_box_parks_nothing(self):
        request = make_request()
        victim = sorted(request.tree.boxes)[0]
        log = request.migrate_box(victim)
        assert log.parked_sources == [] and log.replayed_to == ""
        request.deliver_all_workers()
        assert request.finish(merge) == pytest.approx(EXPECTED_SUM)

    def test_dest_death_in_window_fails_over_down_the_chain(self):
        request = make_request()
        request.deliver_worker(0)
        victim = request.tree.worker_entry[0]
        parent = request.tree.boxes[victim].parent
        assert parent is not None
        log = request.migrate_box(
            victim, interrupt=lambda: request.fail_box(parent))
        assert log.failed_over
        assert log.replayed_to != parent
        for index in (1, 2, 3):
            request.deliver_worker(index)
        assert request.finish(merge) == pytest.approx(EXPECTED_SUM)

    def test_migrate_rejects_unknown_and_failed_boxes(self):
        request = make_request()
        with pytest.raises(KeyError):
            request.migrate_box("box:nope")
        victim = sorted(request.tree.boxes)[0]
        request.fail_box(victim)  # rewired out: no longer migratable
        with pytest.raises(KeyError):
            request.migrate_box(victim)
