"""Tests for the edge-based aggregation strategies."""

import pytest

from repro.aggregation import (
    BinaryTreeStrategy,
    ChainStrategy,
    DAryTreeStrategy,
    NoAggregationStrategy,
    RackLevelStrategy,
)
from repro.netsim import FlowSim
from repro.netsim.routing import EcmpRouter
from repro.topology import ThreeTierParams, three_tier
from repro.units import MB
from repro.workload import AggJob, BackgroundFlow, Workload

SMALL = ThreeTierParams(
    n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2, hosts_per_tor=4
)


def make_topo():
    return three_tier(SMALL)


def job_one_rack(alpha=0.1):
    # master host:3, workers host:0..2, all in rack 0.
    return AggJob(
        "j", "host:3",
        (("host:0", 10 * MB), ("host:1", 10 * MB), ("host:2", 10 * MB)),
        alpha=alpha,
    )


def job_two_racks(alpha=0.1):
    # Workers split across racks 0 and 1 (same pod), master in rack 0.
    return AggJob(
        "j", "host:3",
        (
            ("host:0", 10 * MB), ("host:1", 10 * MB),
            ("host:4", 10 * MB), ("host:5", 10 * MB),
        ),
        alpha=alpha,
    )


def plan(strategy, job, topo=None):
    topo = topo or make_topo()
    return topo, strategy.plan_job(job, topo, EcmpRouter())


def by_id(specs):
    return {s.flow_id: s for s in specs}


def run(topo, specs):
    sim = FlowSim(topo.network)
    sim.add_flows(specs)
    return sim.run()


class TestNoAggregation:
    def test_one_flow_per_worker_at_raw_size(self):
        topo, specs = plan(NoAggregationStrategy(), job_one_rack())
        assert len(specs) == 3
        assert all(s.size == 10 * MB for s in specs)
        assert all(s.kind == "worker" and s.aggregatable for s in specs)

    def test_flows_run(self):
        topo, specs = plan(NoAggregationStrategy(), job_two_racks())
        result = run(topo, specs)
        assert len(result.records) == 4

    def test_master_as_worker_rejected(self):
        job = AggJob("j", "host:0", (("host:0", 1.0),), alpha=0.5)
        with pytest.raises(ValueError):
            plan(NoAggregationStrategy(), job)


class TestRackLevel:
    def test_one_result_flow_per_rack(self):
        topo, specs = plan(RackLevelStrategy(), job_two_racks())
        results = [s for s in specs if s.kind == "result"]
        workers = [s for s in specs if s.kind == "worker"]
        assert len(results) == 2
        assert len(workers) == 2  # one worker per rack feeds the aggregator

    def test_aggregate_is_alpha_of_job_when_saturated(self):
        job = job_one_rack(alpha=0.1)
        topo, specs = plan(RackLevelStrategy(), job)
        (result,) = [s for s in specs if s.kind == "result"]
        # Rack covers the whole job: dictionary bound = alpha * total.
        assert result.size == pytest.approx(0.1 * job.total_bytes)

    def test_aggregate_unsaturated_when_alpha_large(self):
        job = job_two_racks(alpha=0.9)
        topo, specs = plan(RackLevelStrategy(), job)
        for result in (s for s in specs if s.kind == "result"):
            # Each rack holds 20 MB raw < alpha * 40 MB = 36 MB: no
            # reduction possible beyond the received bytes.
            assert result.size == pytest.approx(20 * MB)

    def test_result_depends_on_workers(self):
        topo, specs = plan(RackLevelStrategy(), job_one_rack())
        flows = by_id(specs)
        (result,) = [s for s in specs if s.kind == "result"]
        assert set(result.children) == {
            s.flow_id for s in specs if s.kind == "worker"
        }

    def test_worker_flows_stay_in_rack(self):
        topo, specs = plan(RackLevelStrategy(), job_two_racks())
        for spec in specs:
            if spec.kind == "worker":
                assert len(spec.path) == 2  # host->tor, tor->host

    def test_end_to_end_completion_ordering(self):
        topo, specs = plan(RackLevelStrategy(), job_one_rack())
        result = run(topo, specs)
        res_record = result.records["j:r0"]
        for flow_id, record in result.records.items():
            assert res_record.completion_time >= record.completion_time - 1e-9

    def test_lone_worker_rack_sends_raw(self):
        job = AggJob("j", "host:3", (("host:0", 10 * MB),), alpha=0.1)
        topo, specs = plan(RackLevelStrategy(), job)
        (result,) = specs
        assert result.size == 10 * MB  # nothing to merge


class TestDAryTree:
    def test_chain_is_d1(self):
        assert ChainStrategy().d == 1
        assert BinaryTreeStrategy().d == 2

    def test_invalid_d(self):
        with pytest.raises(ValueError):
            DAryTreeStrategy(d=0)

    def test_every_worker_appears_once(self):
        topo, specs = plan(BinaryTreeStrategy(), job_two_racks())
        # 4 workers over 2 racks: each rack tree emits 1 internal flow,
        # one cross-rack flow, one result flow.
        senders = {s.flow_id for s in specs}
        assert len(senders) == len(specs)
        result = run(topo, specs)
        assert len(result.records) == len(specs)

    def test_chain_intra_rack_structure(self):
        job = job_one_rack()
        topo, specs = plan(ChainStrategy(), job)
        # 3 workers in one rack: flows i2 -> i1 -> res.
        ids = {s.flow_id for s in specs}
        assert ids == {"j:i1", "j:i2", "j:res"}
        flows = by_id(specs)
        assert flows["j:i2"].children == ()
        assert flows["j:i1"].children == ("j:i2",)
        assert flows["j:res"].children == ("j:i1",)

    def test_chain_accumulates_before_dictionary_binds(self):
        job = job_one_rack(alpha=0.9)  # dictionary 27 MB
        topo, specs = plan(ChainStrategy(), job)
        flows = by_id(specs)
        assert flows["j:i2"].size == pytest.approx(10 * MB)  # raw leaf
        assert flows["j:i1"].size == pytest.approx(20 * MB)  # merged, < dict
        assert flows["j:res"].size == pytest.approx(27 * MB)  # dict binds

    def test_dictionary_bound_small_alpha(self):
        job = job_one_rack(alpha=0.1)  # dictionary 3 MB
        topo, specs = plan(ChainStrategy(), job)
        flows = by_id(specs)
        assert flows["j:i1"].size == pytest.approx(3 * MB)
        assert flows["j:res"].size == pytest.approx(3 * MB)

    def test_cross_rack_flows_exist_for_multi_rack_jobs(self):
        topo, specs = plan(BinaryTreeStrategy(), job_two_racks())
        cross = [s for s in specs if s.flow_id.startswith("j:x")]
        assert len(cross) == 1

    def test_result_reaches_master(self):
        topo, specs = plan(BinaryTreeStrategy(), job_two_racks())
        (res,) = [s for s in specs if s.kind == "result"]
        assert res.path[-1].endswith("->host:3")

    def test_deep_chain_completion_cascades(self):
        job = job_one_rack()
        topo, specs = plan(ChainStrategy(), job)
        result = run(topo, specs)
        res = result.records["j:res"]
        leaf = result.records["j:i2"]
        assert res.completion_time >= leaf.completion_time


class TestTrafficOrdering:
    """The paper's Fig. 9 ordering: chain > binary > rack link traffic."""

    def make_workload(self):
        # One rack of four workers, master in the next rack.  alpha=0.5
        # keeps the dictionary bound loose enough that chain hops carry
        # accumulating data (the mechanism behind the paper's Fig. 9).
        job = AggJob(
            "j", "host:4",
            tuple((f"host:{i}", 5 * MB) for i in range(4)),
            alpha=0.5,
        )
        return Workload(jobs=[job])

    def total_traffic(self, strategy):
        topo = make_topo()
        specs = strategy.plan(self.make_workload(), topo)
        result = run(topo, specs)
        return sum(result.link_traffic().values())

    def test_chain_carries_more_than_rack(self):
        assert self.total_traffic(ChainStrategy()) > \
            self.total_traffic(RackLevelStrategy())

    def test_binary_between_rack_and_chain(self):
        rack = self.total_traffic(RackLevelStrategy())
        binary = self.total_traffic(BinaryTreeStrategy())
        chain = self.total_traffic(ChainStrategy())
        assert rack < binary < chain


class TestBackgroundPlanning:
    def test_background_flows_planned(self):
        topo = make_topo()
        workload = Workload(background=[
            BackgroundFlow("bg:0", "host:0", "host:15", 1 * MB),
        ])
        specs = NoAggregationStrategy().plan(workload, topo)
        assert len(specs) == 1
        assert specs[0].kind == "background"
        assert not specs[0].aggregatable
