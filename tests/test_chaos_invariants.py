"""Chaos-invariant suite: random fault schedules x overload levels.

Hypothesis drives randomized (schedule, load) cases against every
execution layer and asserts the invariants the overload-control plane
promises (the correctness backstop the scenario-based fault tests lack):

- **exactness** -- delivered aggregates equal the centralised
  computation over exactly the accepted inputs: nothing lost, nothing
  double-counted, under shedding, spilling, partial flushes, crashes,
  degradations and churn;
- **termination** -- every request either completes or is refused with
  a typed NACK (:class:`AdmissionNack`, :class:`BoxOverloadError`);
  nothing hangs waiting for a partial that will never arrive;
- **legal state machines** -- recorded box-health and circuit-breaker
  traces are contiguous and only take edges the machines define;
- **determinism** -- a fixed seed reproduces bit-identical shim-event,
  health and breaker logs;
- **honest completeness** -- under network partitions a partial
  aggregate is never mislabelled exact: the completeness record's
  missing-worker set equals the ground-truth set of workers the
  partition scopes actually cut off, completeness is monotone in the
  surviving workers, and once every window heals requests are exact
  again.

Example counts default to 200 per layer (the acceptance bar) and can be
lowered for smoke runs via ``CHAOS_EXAMPLES``.  ``derandomize=True``
keeps CI stable; any failure prints a ``@reproduce_failure`` blob (see
conftest.py).
"""

import math
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggbox.box import AggBoxRuntime, AppBinding
from repro.aggbox.functions import SumFunction
from repro.aggbox.overload import (
    HEALTH_STATES,
    SHED_POLICIES,
    BoxOverloadError,
    OverloadPolicy,
    assert_legal_transitions,
)
from repro.aggregation import NetAggStrategy, deploy_boxes
from repro.cluster.emulator import Resource
from repro.core import (
    AdmissionNack,
    AdmissionPolicy,
    BreakerPolicy,
    NetAggPlatform,
    OverloadConfig,
)
from repro.core.admission import NACK_REASONS
from repro.core.breaker import assert_legal_breaker_transitions
from repro.core.failure import rewire_failed_box
from repro.core.partition import PartitionPolicy, SubtreeUnreachable
from repro.core.recovery import InFlightRequest, MigrationAborted
from repro.core.tree import TreeBuilder
from repro.faults import (
    NET_PARTITION,
    EmulatorFaultInjector,
    FaultEvent,
    FaultSchedule,
    PlatformFaultInjector,
    SimFaultInjector,
    in_scope,
    topology_domains,
)
from repro.netsim.engine import EventQueue
from repro.netsim.simulator import FlowSim
from repro.topology import ThreeTierParams, three_tier
from repro.wire.serializer import read_float, write_float
from repro.workload.synthetic import WorkloadParams, generate_workload

CHAOS_EXAMPLES = int(os.environ.get("CHAOS_EXAMPLES", "200"))
CHAOS = settings(max_examples=CHAOS_EXAMPLES, deadline=None,
                 derandomize=True, print_blob=True)

SMALL = ThreeTierParams(
    n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2, hosts_per_tor=4
)
N_HOSTS = SMALL.n_hosts

#: Shared read-only topology for the layers that do not mutate it
#: (platform, box runtime, tree rewiring).  The flow-sim layer builds a
#: fresh one per example because capacity events mutate the network.
TOPO = three_tier(SMALL)
deploy_boxes(TOPO)
BOX_IDS = sorted(info.box_id for info in TOPO.all_boxes())


def sum_binding():
    return AppBinding(
        app="sum", function=SumFunction(),
        deserialise=lambda b: read_float(b)[0],
        serialise=write_float,
    )


# ---------------------------------------------------------------------------
# Layer 1: the agg-box runtime under bounded queues and shed policies


@st.composite
def box_scenario(draw):
    policy = OverloadPolicy(
        max_pending=draw(st.integers(2, 5)),
        shed=draw(st.sampled_from(SHED_POLICIES)),
    )
    n_requests = draw(st.integers(1, 4))
    requests = {}
    ops = []
    for r in range(n_requests):
        values = draw(st.lists(st.integers(1, 100), min_size=1,
                               max_size=8))
        rid = f"r{r}"
        requests[rid] = [float(v) for v in values]
        ops.extend((rid, f"w{i}", float(v)) for i, v in enumerate(values))
    order = draw(st.permutations(ops))
    relieve_after = draw(st.sets(st.integers(0, len(ops) - 1)))
    return policy, requests, order, relieve_after


class TestBoxRuntimeChaos:
    @given(scenario=box_scenario())
    @CHAOS
    def test_exactness_termination_and_legal_health(self, scenario):
        policy, requests, order, relieve_after = scenario
        box = AggBoxRuntime("box:chaos", policy=policy)
        box.register_app(sum_binding())
        for rid, values in requests.items():
            box.announce("sum", rid, len(values))

        delivered = {rid: 0.0 for rid in requests}
        refused = {rid: 0.0 for rid in requests}
        accepted = set()

        def collect(emission):
            if emission is not None:
                delivered[emission.request_id] += emission.value

        for step, (rid, source, value) in enumerate(order):
            try:
                collect(box.submit_partial("sum", rid, source, value))
                accepted.add((rid, source))
            except BoxOverloadError as err:
                # Typed NACK: the sender walks its ladder and the box's
                # expected count is adjusted, exactly as the platform
                # does -- the refusal is a terminating outcome.
                assert err.policy in SHED_POLICIES
                refused[rid] += value
                collect(box.adjust_expected("sum", rid, -1))
            for delta in box.drain_shed():
                collect(delta)
            # Bounded queue: the policy's cap is never exceeded.
            assert box.pending_count("sum") <= policy.max_pending
            assert box.health in HEALTH_STATES
            if step in relieve_after:
                collect(box.relieve("sum"))

        # Duplicate suppression: re-sending any accepted source (the
        # failure-recovery replay path) must not change any aggregate.
        for rid, source in sorted(accepted):
            assert box.submit_partial("sum", rid, source, 1e9) is None
            for delta in box.drain_shed():  # pragma: no cover - guard
                collect(delta)

        # Exactness: every value was either folded into an emission
        # (final or flush delta) or refused with a typed error.
        for rid, values in requests.items():
            assert delivered[rid] + refused[rid] == sum(values)

        # Termination: every request emitted, or has nothing buffered
        # and expects nothing more (all inputs refused or flushed).
        for state in box.pending_requests():
            assert not state.partials
            assert state.expected == 0

        assert_legal_transitions(box.health_transitions)


# ---------------------------------------------------------------------------
# Layer 2: the functional platform end-to-end


@st.composite
def platform_scenario(draw):
    seed = draw(st.integers(0, 10 ** 6))
    counts = dict(
        box_crashes=draw(st.integers(0, 2)),
        degradations=draw(st.integers(0, 2)),
        churns=draw(st.integers(0, 2)),
        overloads=draw(st.integers(0, 3)),
        sheds=draw(st.integers(0, 2)),
    )
    permanent = draw(st.sampled_from([0.0, 1.0]))
    overload = OverloadConfig(
        queue=OverloadPolicy(max_pending=draw(st.integers(2, 4))),
        breaker=BreakerPolicy(
            failure_threshold=draw(st.integers(1, 3)),
            reset_timeout=draw(st.sampled_from([0.2, 0.5])),
        ),
        admission=AdmissionPolicy(
            rate=draw(st.sampled_from([2.0, 10.0, 50.0])),
            burst=draw(st.sampled_from([1.0, 3.0])),
            max_queue_depth=draw(st.sampled_from([None, 4, 8])),
        ),
    )
    n_requests = draw(st.integers(1, 3))
    requests = []
    for _ in range(n_requests):
        hosts = draw(st.lists(st.integers(0, N_HOSTS - 1), min_size=4,
                              max_size=6, unique=True))
        values = draw(st.lists(st.integers(1, 100),
                               min_size=len(hosts) - 1,
                               max_size=len(hosts) - 1))
        start = draw(st.floats(0.0, 2.5))
        requests.append((hosts[0], hosts[1:], [float(v) for v in values],
                         start))
    return seed, counts, permanent, overload, requests


class TestPlatformChaos:
    @given(scenario=platform_scenario())
    @CHAOS
    def test_exact_or_nacked_with_legal_machines(self, scenario):
        seed, counts, permanent, overload, requests = scenario
        schedule = FaultSchedule.generate(
            seed=seed, duration=3.0, boxes=BOX_IDS, workers=8,
            permanent_fraction=permanent, **counts)
        platform = NetAggPlatform(
            TOPO, faults=PlatformFaultInjector(schedule),
            overload=overload)
        platform.register_app("sum", SumFunction(), write_float,
                              lambda b: read_float(b)[0])

        # Requests run in start order so the virtual clock only advances.
        for i, (master, workers, values, start) in enumerate(
                sorted(requests, key=lambda r: r[3])):
            platform.advance_clock(start)
            partials = [(f"host:{h}", v)
                        for h, v in zip(workers, values)]
            try:
                outcome = platform.execute_request(
                    "sum", f"r{i}", f"host:{master}", partials)
            except AdmissionNack as nack:
                # Termination by typed NACK: legal reason, logged.
                assert nack.reason in NACK_REASONS
                assert platform.admission.nacks[-1].reason == nack.reason
                continue
            # Exactness: byte-identical to the centralised sum.
            assert outcome.value == sum(values)
            assert len(outcome.worker_responses) == len(partials)

        if platform.breakers is not None:
            assert_legal_breaker_transitions(
                platform.breakers.transitions())
        for box_id in BOX_IDS:
            runtime = platform.box_runtime(box_id)
            assert_legal_transitions(runtime.health_transitions)
        for beat in platform.health_report().values():
            assert beat.state in HEALTH_STATES

    def test_fixed_seed_reproduces_bit_identical_logs(self):
        def run_once():
            schedule = FaultSchedule.generate(
                seed=7, duration=3.0, boxes=BOX_IDS, workers=6,
                box_crashes=2, degradations=2, churns=1, overloads=3,
                sheds=2, permanent_fraction=0.5)
            platform = NetAggPlatform(
                TOPO, faults=PlatformFaultInjector(schedule),
                overload=OverloadConfig(
                    queue=OverloadPolicy(max_pending=3),
                    breaker=BreakerPolicy(failure_threshold=2,
                                          reset_timeout=0.3),
                    admission=AdmissionPolicy(rate=20.0, burst=3.0,
                                              max_queue_depth=6)))
            platform.register_app("sum", SumFunction(), write_float,
                                  lambda b: read_float(b)[0])
            partials = [(f"host:{h}", float(h)) for h in (4, 8, 12, 15)]
            log = []
            for i in range(4):
                platform.advance_clock(i * 0.6)
                try:
                    outcome = platform.execute_request(
                        "sum", f"r{i}", "host:0", partials)
                    log.append([repr(e) for e in outcome.shim_events])
                except AdmissionNack as nack:
                    log.append(repr((nack.tenant, nack.at, nack.reason)))
            health = {
                box_id: [repr(t) for t in
                         platform.box_runtime(box_id).health_transitions]
                for box_id in BOX_IDS
            }
            breakers = [repr(t) for t in platform.breakers.transitions()]
            return log, health, breakers

        assert run_once() == run_once()


# ---------------------------------------------------------------------------
# Layer 3: the flow-level simulator with service-capacity faults


@st.composite
def sim_scenario(draw):
    seed = draw(st.integers(0, 10 ** 6))
    counts = dict(
        overloads=draw(st.integers(0, 4)),
        sheds=draw(st.integers(0, 2)),
        box_crashes=draw(st.integers(0, 1)),
    )
    permanent = draw(st.sampled_from([0.0, 1.0]))
    n_flows = draw(st.integers(8, 18))
    return seed, counts, permanent, n_flows


class TestFlowSimChaos:
    @given(scenario=sim_scenario())
    @CHAOS
    def test_all_flows_drain_under_overload_windows(self, scenario):
        seed, counts, permanent, n_flows = scenario
        topo = three_tier(SMALL)
        deploy_boxes(topo)
        boxes = sorted(info.box_id for info in topo.all_boxes())
        schedule = FaultSchedule.generate(
            seed=seed, duration=1.0, boxes=boxes,
            permanent_fraction=permanent, **counts)
        workload = generate_workload(
            topo, WorkloadParams(n_flows=n_flows), seed=seed % 997 + 1)
        injector = SimFaultInjector(topo, schedule)
        strategy = NetAggStrategy(fault_view=injector.fault_view)
        sim = FlowSim(topo.network)
        sim.add_flows(strategy.plan(workload, topo))
        injector.apply(sim, workload)
        result = sim.run()  # raises on stalled flows

        # Termination: overload/shed windows self-clear and permanent
        # crashes reroute, so every admitted flow eventually drains.
        assert result.records
        for record in result.records.values():
            assert math.isfinite(record.fct), record.spec.flow_id
            assert record.fct >= 0.0
        assert math.isfinite(result.end_time)


# ---------------------------------------------------------------------------
# Layer 4: the testbed emulator's queueing resources


@st.composite
def emulator_scenario(draw):
    seed = draw(st.integers(0, 10 ** 6))
    counts = dict(
        overloads=draw(st.integers(0, 3)),
        sheds=draw(st.integers(0, 2)),
        box_crashes=draw(st.integers(0, 2)),
    )
    n_jobs = draw(st.integers(1, 6))
    jobs = [
        (draw(st.floats(0.0, 2.0)), draw(st.integers(1, 50)))
        for _ in range(n_jobs)
    ]
    return seed, counts, jobs


class TestEmulatorChaos:
    @given(scenario=emulator_scenario())
    @CHAOS
    def test_transfers_complete_and_rate_restores(self, scenario):
        seed, counts, jobs = scenario
        queue = EventQueue()
        nic = Resource(queue, "nic", rate=10.0)
        # permanent_fraction=0: every crash recovers, so parked work
        # replays; overload/shed windows self-clear by construction.
        schedule = FaultSchedule.generate(
            seed=seed, duration=2.0, boxes=["nic"],
            permanent_fraction=0.0, **counts)
        EmulatorFaultInjector(schedule).arm(queue, {"nic": nic})
        done = []
        for at, units in jobs:
            queue.schedule_at(
                at, lambda u=units: nic.request(
                    float(u), lambda: done.append(queue.now)))
        queue.run()

        # Termination: every transfer completed despite fail/replay.
        assert len(done) == len(jobs)
        # The service rate is back at its built value: overload windows
        # restored it and every crash recovered.
        assert nic.rate == pytest.approx(10.0)
        assert not nic.is_down
        # Conservation: at least the ideal service time was spent.
        ideal = sum(units for _, units in jobs) / 10.0
        assert nic.busy_time >= ideal - 1e-9


# ---------------------------------------------------------------------------
# Cascading failures: sequential tree rewiring (satellite)


def check_tree_invariants(tree, n_workers):
    """Structural invariants every (rewired) aggregation tree must hold."""
    # Worker coverage: every worker still has exactly one entry point.
    assert set(tree.worker_entry) == set(range(n_workers))
    for index, entry in tree.worker_entry.items():
        assert entry is None or entry in tree.boxes
        lane = tree.worker_lane[index]
        assert isinstance(lane, tuple) and lane
        # Lane connectivity: ends at the entry box's switch (or the
        # master's ToR when the worker ships direct), no stutters.
        terminus = (tree.master_tor if entry is None
                    else tree.boxes[entry].info.switch_id)
        assert lane[-1] == terminus
        assert all(a != b for a, b in zip(lane, lane[1:]))
    direct = {
        index for index, entry in tree.worker_entry.items()
        if entry is None
    }
    assert set(tree.direct_workers()) == direct
    seen_workers = set(direct)
    for box_id, vertex in tree.boxes.items():
        # Parent/child pointers are mutually consistent.
        if vertex.parent is not None:
            assert vertex.parent in tree.boxes
            assert box_id in tree.boxes[vertex.parent].children
        for child in vertex.children:
            assert tree.boxes[child].parent == box_id
        assert vertex.lane_to_parent
        # No duplicate replay sources: each worker feeds exactly one box.
        workers = set(vertex.direct_workers)
        assert len(vertex.direct_workers) == len(workers)
        assert not (workers & seen_workers)
        seen_workers |= workers
        assert workers == {
            index for index, entry in tree.worker_entry.items()
            if entry == box_id
        }
    assert seen_workers == set(range(n_workers))


class TestCascadingRewires:
    @given(data=st.data())
    @CHAOS
    def test_sequential_rewires_preserve_invariants(self, data):
        n_workers = data.draw(st.integers(2, 8), label="n_workers")
        hosts = data.draw(st.lists(
            st.integers(0, N_HOSTS - 1), min_size=n_workers + 1,
            max_size=n_workers + 1, unique=True), label="hosts")
        key = f"job{data.draw(st.integers(0, 999), label='key')}"
        tree = TreeBuilder(TOPO).build(
            key, f"host:{hosts[0]}",
            [f"host:{h}" for h in hosts[1:]])
        check_tree_invariants(tree, n_workers)
        n_failures = data.draw(st.integers(1, 3), label="n_failures")
        for _ in range(n_failures):
            if not tree.boxes:
                break
            victim = data.draw(
                st.sampled_from(sorted(tree.boxes)), label="victim")
            tree = rewire_failed_box(tree, victim)
            assert victim not in tree.boxes
            check_tree_invariants(tree, n_workers)


# ---------------------------------------------------------------------------
# Layer 5: mid-request and mid-migration failures (the optimizer's
# drain-then-cutover protocol under chaos)


def make_migration_request(host_ids, values):
    """A live request over the shared topology with fresh box runtimes."""
    tree = TreeBuilder(TOPO).build(
        "req", "host:0", [f"host:{h}" for h in host_ids])
    function = SumFunction()
    boxes = {}
    for info in TOPO.all_boxes():
        runtime = AggBoxRuntime(info.box_id)
        runtime.register_app(sum_binding())
        boxes[info.box_id] = runtime
    return InFlightRequest(
        tree, boxes, "sum", "req", [float(v) for v in values],
        merge=lambda parts: function.merge(parts),
    )


@st.composite
def migration_scenario(draw):
    n_workers = draw(st.integers(3, 6))
    hosts = draw(st.lists(st.integers(1, N_HOSTS - 1),
                          min_size=n_workers, max_size=n_workers,
                          unique=True))
    values = draw(st.lists(st.integers(1, 100), min_size=n_workers,
                           max_size=n_workers))
    pre_delivered = draw(st.sets(st.integers(0, n_workers - 1)))
    victim_pick = draw(st.integers(0, 31))
    action = draw(st.sampled_from(
        ["none", "abort", "kill_source", "kill_dest", "kill_other"]))
    return hosts, values, pre_delivered, victim_pick, action


class TestMigrationChaos:
    """Exactness survives failures landing *inside* a migration window.

    The drain phase parks buffered partials without touching the
    duplicate-suppression sets, so whatever the interruption does --
    abort the migration (rollback), kill the migrating box, kill its
    cutover destination, kill a bystander -- the replay lands exactly
    once and the final aggregate equals the centralised computation.
    """

    @given(scenario=migration_scenario())
    @CHAOS
    def test_exactness_with_failure_between_drain_and_cutover(
            self, scenario):
        hosts, values, pre_delivered, victim_pick, action = scenario
        request = make_migration_request(hosts, values)
        request.announce_all()
        for index in sorted(pre_delivered):
            request.deliver_worker(index)
        boxes = sorted(request.tree.boxes)
        if not boxes:
            return  # degenerate tree: every worker ships direct
        victim = boxes[victim_pick % len(boxes)]
        parent = request.tree.boxes[victim].parent
        others = [b for b in boxes if b != victim and b != parent]

        def interrupt():
            if action == "abort":
                raise MigrationAborted("chaos says no")
            if action == "kill_source":
                request.fail_box(victim)
            elif action == "kill_dest" and parent is not None:
                request.fail_box(parent)
            elif action == "kill_other" and others:
                request.fail_box(others[victim_pick % len(others)])

        log = request.migrate_box(victim, interrupt=interrupt)
        for index in range(len(hosts)):
            if index not in pre_delivered:
                request.deliver_worker(index)
        # Exactness: nothing lost, nothing double-counted.
        assert request.finish() == pytest.approx(sum(values))
        if action == "abort":
            assert log.rolled_back
            assert log.replayed_to in ("", victim)
        if action == "kill_dest" and parent is not None \
                and log.dest_chain and log.dest_chain[0] == parent:
            # First-choice destination died in the window: the replay
            # walked the failover ladder instead of being lost.
            assert log.failed_over or log.rolled_back

    def test_rollback_replays_parked_partials_into_source(self):
        """The dedicated rollback path: drain parks a delivered
        partial, the migration aborts, and the parked value replays
        into the still-live source under its original tag -- accepted
        exactly once because parking cleared the suppression sets."""
        hosts = [4, 5, 8, 12]
        values = [1.0, 2.0, 4.0, 8.0]
        request = make_migration_request(hosts, values)
        request.announce_all()
        request.deliver_worker(0)
        victim = request.tree.worker_entry[0]
        assert victim is not None

        def abort():
            raise MigrationAborted("cutover refused")

        log = request.migrate_box(victim, interrupt=abort)
        assert log.rolled_back
        assert log.parked_sources == ["worker:0"]
        request.deliver_worker(1)
        request.deliver_worker(2)
        request.deliver_worker(3)
        assert request.finish() == pytest.approx(sum(values))

    def test_source_crash_mid_window_loses_nothing(self):
        """Drain parks first, so the source dying inside the window
        cannot take buffered partials with it."""
        hosts = [4, 5, 8, 12]
        values = [1.0, 2.0, 4.0, 8.0]
        request = make_migration_request(hosts, values)
        request.announce_all()
        request.deliver_worker(0)
        victim = request.tree.worker_entry[0]
        assert victim is not None
        log = request.migrate_box(
            victim, interrupt=lambda: request.fail_box(victim))
        assert log.failed_over
        for index in (1, 2, 3):
            request.deliver_worker(index)
        assert request.finish() == pytest.approx(sum(values))


# ---------------------------------------------------------------------------
# Layer 6: network partitions, partial delivery and completeness labels

#: Every partition scope the shared topology defines (pods + racks).
PARTITION_SCOPES = sorted(topology_domains(TOPO))


def host(h):
    return f"host:{h}"


def ground_truth_excluded(master, workers, scopes):
    """Worker indices the scopes cut off the master, by definition.

    A scope separates two endpoints when exactly one of them is inside
    it -- computed here straight from :func:`repro.faults.in_scope`,
    independently of the platform's delivery path.
    """
    return {
        i for i, w in enumerate(workers)
        if any(in_scope(TOPO, host(w), s) != in_scope(TOPO, host(master), s)
               for s in scopes)
    }


def partition_platform(scopes, duration):
    schedule = FaultSchedule([
        FaultEvent(time=0.5, kind=NET_PARTITION, target=scope,
                   duration=duration)
        for scope in scopes
    ])
    platform = NetAggPlatform(
        TOPO, faults=PlatformFaultInjector(schedule, topo=TOPO),
        partition=PartitionPolicy())
    platform.register_app("sum", SumFunction(), write_float,
                          lambda b: read_float(b)[0])
    return platform


def completeness_fraction(platform, request_id, master, partials):
    """Run one request; an all-workers-cut refusal counts as 0.0."""
    try:
        outcome = platform.execute_request(
            "sum", request_id, host(master), partials)
    except SubtreeUnreachable:
        return 0.0
    return outcome.completeness.fraction


@st.composite
def partition_scenario(draw):
    hosts = draw(st.lists(st.integers(0, N_HOSTS - 1), min_size=4,
                          max_size=6, unique=True))
    master, workers = hosts[0], hosts[1:]
    values = [float(v) for v in draw(st.lists(
        st.integers(1, 100), min_size=len(workers),
        max_size=len(workers)))]
    scopes = draw(st.lists(st.sampled_from(PARTITION_SCOPES),
                           min_size=1, max_size=2, unique=True))
    permanent = draw(st.booleans())
    return master, workers, values, scopes, permanent


class TestPartitionChaos:
    @given(scenario=partition_scenario())
    @CHAOS
    def test_completeness_labels_never_lie(self, scenario):
        master, workers, values, scopes, permanent = scenario
        excluded = ground_truth_excluded(master, workers, scopes)
        platform = partition_platform(
            scopes, duration=0.0 if permanent else 10.0)
        platform.advance_clock(1.0)  # inside every window
        partials = [(host(w), v) for w, v in zip(workers, values)]
        try:
            outcome = platform.execute_request(
                "sum", "r0", host(master), partials)
        except SubtreeUnreachable as refusal:
            # Only a request with nothing reachable may be refused,
            # and the refusal names exactly the ground-truth set.
            assert excluded == set(range(len(workers)))
            assert set(refusal.missing_workers) == excluded
            return
        comp = outcome.completeness
        assert comp is not None
        # The label matches the ground truth: exact iff nothing was
        # cut off, and the missing set is neither padded nor trimmed.
        assert set(comp.missing_workers) == excluded
        assert comp.exact == (not excluded)
        assert comp.workers_total == len(workers)
        assert comp.workers_included == len(workers) - len(excluded)
        # Exactness over the included workers: nothing lost, nothing
        # double-counted, no silent substitution for the missing.
        included_sum = sum(v for i, v in enumerate(values)
                           if i not in excluded)
        assert outcome.value == included_sum
        assert len(outcome.events_of_kind("partition")) == len(excluded)

    @given(scenario=partition_scenario())
    @CHAOS
    def test_completeness_monotone_in_surviving_workers(self, scenario):
        master, workers, values, scopes, permanent = scenario
        if len(scopes) < 2:
            extra = next(s for s in PARTITION_SCOPES if s not in scopes)
            scopes = scopes + [extra]
        partials = [(host(w), v) for w, v in zip(workers, values)]
        fractions = []
        for cut in (scopes[:1], scopes):  # widening cuts
            platform = partition_platform(
                cut, duration=0.0 if permanent else 10.0)
            platform.advance_clock(1.0)
            fractions.append(completeness_fraction(
                platform, "r0", master, partials))
        # Cutting more scopes can only shrink the surviving-worker
        # set, so completeness must not increase.
        assert fractions[1] <= fractions[0] + 1e-12

    @given(scenario=partition_scenario())
    @CHAOS
    def test_post_heal_requests_are_exact(self, scenario):
        master, workers, values, scopes, _ = scenario
        platform = partition_platform(scopes, duration=1.0)
        partials = [(host(w), v) for w, v in zip(workers, values)]
        platform.advance_clock(1.0)
        try:
            platform.execute_request("sum", "r0", host(master), partials)
        except SubtreeUnreachable:
            pass  # everything cut during the window -- legal
        # Far beyond every window (probe retries burn bounded clock).
        platform.advance_clock(60.0)
        outcome = platform.execute_request(
            "sum", "r1", host(master), partials)
        assert outcome.completeness is not None
        assert outcome.completeness.exact
        assert outcome.value == sum(values)
        assert not outcome.events_of_kind("partition")
