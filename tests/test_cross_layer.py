"""Cross-layer consistency: the flow simulator and the functional
platform must wire the *same* aggregation trees, and the functional
byte counts must match the wire encoding exactly."""

import pytest

from repro.aggbox.functions import TopKFunction
from repro.aggregation import NetAggStrategy, deploy_boxes
from repro.core import NetAggPlatform
from repro.core.tree import TreeBuilder
from repro.netsim.routing import EcmpRouter
from repro.topology import ThreeTierParams, three_tier
from repro.units import MB
from repro.wire.framing import frame
from repro.wire.records import (
    SearchResult,
    decode_search_results,
    encode_search_results,
)
from repro.workload import AggJob

SMALL = ThreeTierParams(
    n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2, hosts_per_tor=4
)
WORKERS = ("host:4", "host:8", "host:12")


def make_topo():
    topo = three_tier(SMALL)
    deploy_boxes(topo)
    return topo


class TestSharedTreeConstruction:
    def test_strategy_and_platform_use_same_boxes(self):
        """The simulated flows traverse exactly the boxes the platform's
        trees contain -- both are built by repro.core.tree."""
        topo = make_topo()
        job = AggJob("req-7", "host:0",
                     tuple((h, MB) for h in WORKERS), alpha=0.1)
        specs = NetAggStrategy().plan_job(job, topo, EcmpRouter())
        sim_boxes = set()
        for spec in specs:
            for link in spec.path:
                if link.startswith("proc:"):
                    sim_boxes.add(link[len("proc:"):])

        builder = TreeBuilder(topo)
        tree = builder.build("req-7", "host:0", list(WORKERS))
        assert sim_boxes == set(tree.boxes)

    def test_tree_selection_consistent_across_layers(self):
        topo = make_topo()
        builder = TreeBuilder(topo)
        for key in ("a", "b", "c"):
            t_strategy = builder.build(key, "host:0", list(WORKERS), 1)
            t_again = builder.build(key, "host:0", list(WORKERS), 1)
            assert set(t_strategy.boxes) == set(t_again.boxes)


class TestByteAccounting:
    def test_platform_bytes_match_wire_encoding(self):
        topo = make_topo()
        platform = NetAggPlatform(topo)
        platform.register_app("solr", TopKFunction(k=3),
                              encode_search_results,
                              decode_search_results)
        partials = [
            (host, [SearchResult(i * 10 + j, float(j)) for j in range(4)])
            for i, host in enumerate(WORKERS)
        ]
        outcome = platform.execute_request("solr", "r", "host:0", partials)

        # Recompute expected framed sizes of everything entering boxes:
        # the three worker payloads plus every box-to-box aggregate.
        tree = platform.build_trees("r", "host:0",
                                    [h for h, _ in partials])[0]
        fn = TopKFunction(k=3)
        expected = sum(
            len(frame(encode_search_results(p))) for _, p in partials
        )

        def aggregate_of(box_id):
            vertex = tree.boxes[box_id]
            inputs = [partials[w][1] for w in vertex.direct_workers]
            inputs += [aggregate_of(c) for c in vertex.children]
            return fn.merge(inputs)

        for box_id, vertex in tree.boxes.items():
            if vertex.parent is not None:
                payload = frame(encode_search_results(
                    aggregate_of(box_id)))
                expected += len(payload)
        assert outcome.bytes_into_boxes == pytest.approx(expected)

    def test_aggregation_reduces_bytes_into_master_path(self):
        """The box nearest the master receives less than the raw total
        whenever the merge actually reduces (top-k across many)."""
        topo = make_topo()
        platform = NetAggPlatform(topo)
        platform.register_app("solr", TopKFunction(k=2),
                              encode_search_results,
                              decode_search_results)
        partials = [
            (host, [SearchResult(i * 100 + j, float(j), "x" * 50)
                    for j in range(20)])
            for i, host in enumerate(WORKERS)
        ]
        raw_bytes = sum(
            len(frame(encode_search_results(p))) for _, p in partials
        )
        outcome = platform.execute_request("solr", "r", "host:0", partials)
        final_payload = encode_search_results(outcome.value)
        assert len(final_payload) < raw_bytes / 3
