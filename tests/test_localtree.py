"""Tests for the local aggregation tree (functional + performance)."""

import pytest

from repro.aggbox.functions import SumFunction, TopKFunction
from repro.aggbox.localtree import (
    LocalTreeModel,
    TreeModelParams,
    tree_aggregate,
)
from repro.units import Gbps, to_gbps
from repro.wire.records import SearchResult


class TestTreeAggregate:
    def test_empty_returns_identity(self):
        assert tree_aggregate(SumFunction(), []) == 0.0

    def test_single_item_passes_through_function(self):
        fn = TopKFunction(k=1)
        out = tree_aggregate(fn, [[SearchResult(1, 2.0),
                                   SearchResult(2, 5.0)]])
        assert [r.doc_id for r in out] == [2]

    def test_matches_flat_merge(self):
        fn = SumFunction()
        items = [float(i) for i in range(17)]
        assert tree_aggregate(fn, items) == fn.merge(items)

    def test_fan_in_validation(self):
        with pytest.raises(ValueError):
            tree_aggregate(SumFunction(), [1.0], fan_in=1)

    def test_wide_fan_in(self):
        fn = SumFunction()
        items = [1.0] * 100
        assert tree_aggregate(fn, items, fan_in=8) == 100.0


class TestTreeModelParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            TreeModelParams(leaves=0)
        with pytest.raises(ValueError):
            TreeModelParams(threads=0)
        with pytest.raises(ValueError):
            TreeModelParams(alpha=0.0)
        with pytest.raises(ValueError):
            TreeModelParams(buffer_chunks=0)
        with pytest.raises(ValueError):
            TreeModelParams(chunk_bytes=-1.0)


class TestTreeModelStructure:
    def test_binary_tree_task_count(self):
        model = LocalTreeModel(TreeModelParams(leaves=8))
        assert model.n_tasks == 7

    def test_single_leaf_no_tasks(self):
        model = LocalTreeModel(TreeModelParams(leaves=1))
        assert model.n_tasks == 0

    def test_odd_leaves(self):
        model = LocalTreeModel(TreeModelParams(leaves=5))
        assert model.n_tasks == 4  # 5 -> 3 -> 2 -> 1


class TestTreeModelBehaviour:
    def test_all_input_processed(self):
        params = TreeModelParams(leaves=4, threads=4)
        result = LocalTreeModel(params).run()
        chunks = round(params.bytes_per_leaf / params.chunk_bytes)
        assert result.input_bytes == pytest.approx(
            chunks * params.chunk_bytes * 4
        )
        assert result.tasks_executed == 3 * chunks

    def test_more_threads_never_slower(self):
        slow = LocalTreeModel(TreeModelParams(leaves=32, threads=4)).run()
        fast = LocalTreeModel(TreeModelParams(leaves=32, threads=16)).run()
        assert fast.throughput >= slow.throughput * 0.99

    def test_more_leaves_more_throughput_until_saturation(self):
        small = LocalTreeModel(TreeModelParams(leaves=2, threads=16)).run()
        large = LocalTreeModel(TreeModelParams(leaves=32, threads=16)).run()
        assert large.throughput > small.throughput * 2

    def test_throughput_bounded_by_ingest(self):
        params = TreeModelParams(leaves=64, threads=32,
                                 ingest_rate=Gbps(10.0))
        result = LocalTreeModel(params).run()
        assert result.throughput <= Gbps(10.0) * 1.01

    def test_peak_concurrency_bounded_by_threads(self):
        params = TreeModelParams(leaves=64, threads=8)
        result = LocalTreeModel(params).run()
        assert result.peak_concurrency <= 8

    def test_expensive_function_lowers_throughput(self):
        cheap = LocalTreeModel(TreeModelParams(leaves=16, threads=8)).run()
        costly = LocalTreeModel(TreeModelParams(leaves=16, threads=8,
                                                cpu_factor=8.0)).run()
        assert costly.throughput < cheap.throughput / 4

    def test_fig15_shape(self):
        """Throughput rises with leaves; bigger pools raise the plateau."""
        def tp(leaves, threads):
            return LocalTreeModel(TreeModelParams(
                leaves=leaves, threads=threads)).run().throughput

        assert tp(4, 8) < tp(16, 8)
        assert tp(64, 16) > tp(64, 8)
        # With a big pool the tree saturates near the 10G ingest link.
        assert to_gbps(tp(64, 32)) > 8.0
