"""Tests for links and the network container."""

import pytest

from repro.netsim.network import Link, Network


class TestLink:
    def test_positive_capacity_required(self):
        with pytest.raises(ValueError):
            Link("l", 0.0)

    def test_defaults(self):
        link = Link("a->b", 10.0, src="a", dst="b")
        assert not link.virtual
        assert link.bytes_carried == 0.0


class TestNetwork:
    def test_add_and_lookup(self):
        net = Network([Link("l1", 1.0)])
        assert "l1" in net
        assert net.link("l1").capacity == 1.0
        assert len(net) == 1

    def test_duplicate_rejected(self):
        net = Network([Link("l1", 1.0)])
        with pytest.raises(ValueError):
            net.add_link(Link("l1", 2.0))

    def test_capacities_shape(self):
        net = Network([Link("a", 1.0), Link("b", 2.0)])
        assert net.capacities() == {"a": 1.0, "b": 2.0}

    def test_accounting(self):
        net = Network([Link("l", 1.0)])
        net.account("l", 100.0)
        net.account("l", 50.0)
        assert net.link("l").bytes_carried == 150.0
        net.reset_accounting()
        assert net.link("l").bytes_carried == 0.0

    def test_wire_links_excludes_virtual(self):
        net = Network([
            Link("wire", 1.0),
            Link("proc:x", 1.0, virtual=True),
        ])
        assert [l.link_id for l in net.wire_links()] == ["wire"]
        assert len(list(net)) == 2
