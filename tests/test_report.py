"""Tests for the terminal chart renderer."""

import pytest

from repro.experiments.common import ExperimentResult
from repro.report import bar_chart, series_chart, sparkline, summarise


def make_result():
    result = ExperimentResult(
        experiment="demo",
        description="a demo result",
        columns=("alpha", "netagg", "rack", "name"),
    )
    result.add_row(alpha=0.1, netagg=0.3, rack=1.0, name="a")
    result.add_row(alpha=0.5, netagg=0.5, rack=1.0, name="b")
    result.add_row(alpha=1.0, netagg=0.9, rack=1.0, name="c")
    return result


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_ramp(self):
        line = sparkline([0, 1, 2, 3])
        assert line == "".join(sorted(line))
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestBarChart:
    def test_renders_all_rows(self):
        chart = bar_chart(make_result(), "name", "netagg")
        assert chart.count("\n") == 3
        assert "0.300" in chart and "0.900" in chart

    def test_longest_bar_is_max(self):
        chart = bar_chart(make_result(), "name", "netagg", width=10)
        lines = chart.splitlines()[1:]
        bars = [line.count("█") for line in lines]
        assert max(bars) == bars[-1] == 10

    def test_unknown_column_raises(self):
        with pytest.raises(KeyError):
            bar_chart(make_result(), "name", "ghost")


class TestSeriesChart:
    def test_contains_marks_and_legend(self):
        chart = series_chart(make_result(), "alpha",
                             series=("netagg", "rack"))
        assert "* netagg" in chart
        assert "o rack" in chart
        assert "*" in chart.splitlines()[3] or "*" in chart

    def test_auto_series_excludes_non_numeric(self):
        chart = series_chart(make_result(), "alpha")
        assert "name" not in chart.splitlines()[-1]

    def test_bounds_in_header(self):
        chart = series_chart(make_result(), "alpha")
        assert "[0.3, 1]" in chart or "0.3" in chart


class TestSummarise:
    def test_one_line_per_numeric_column(self):
        text = summarise(make_result())
        assert "alpha" in text
        assert "netagg" in text
        assert "name" not in text.splitlines()[-1]

    def test_ranges_shown(self):
        text = summarise(make_result())
        assert "0.3" in text and "0.9" in text
