"""Tests for the max-min fairness solver (both implementations)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.fairness import (
    _np,
    max_min_rates,
    max_min_rates_np,
    max_min_rates_py,
)

SOLVERS = [max_min_rates_py, max_min_rates_np]


@pytest.fixture(params=SOLVERS, ids=["python", "numpy"])
def solver(request):
    if request.param is max_min_rates_np and _np is None:
        pytest.skip("numpy not installed")
    return request.param


class TestBasics:
    def test_empty(self, solver):
        assert solver({}, {}) == {}

    def test_single_flow_gets_full_link(self, solver):
        rates = solver({"f": ["l"]}, {"l": 10.0})
        assert rates["f"] == pytest.approx(10.0)

    def test_equal_share(self, solver):
        rates = solver({"a": ["l"], "b": ["l"]}, {"l": 10.0})
        assert rates["a"] == pytest.approx(5.0)
        assert rates["b"] == pytest.approx(5.0)

    def test_classic_three_flow_example(self, solver):
        # a uses l1 only, c uses l2 only, b crosses both; l2 is tighter.
        rates = solver(
            {"a": ["l1"], "b": ["l1", "l2"], "c": ["l2"]},
            {"l1": 10.0, "l2": 6.0},
        )
        assert rates["b"] == pytest.approx(3.0)
        assert rates["c"] == pytest.approx(3.0)
        assert rates["a"] == pytest.approx(7.0)

    def test_flow_without_links_is_unbounded(self, solver):
        rates = solver({"free": []}, {})
        assert rates["free"] == math.inf

    def test_unknown_link_raises(self, solver):
        with pytest.raises(KeyError):
            solver({"f": ["nope"]}, {"l": 1.0})


class TestRateCaps:
    def test_cap_binds(self, solver):
        rates = solver({"f": ["l"]}, {"l": 10.0}, {"f": 4.0})
        assert rates["f"] == pytest.approx(4.0)

    def test_cap_releases_bandwidth_to_others(self, solver):
        rates = solver(
            {"a": ["l"], "b": ["l"]}, {"l": 10.0}, {"a": 2.0}
        )
        assert rates["a"] == pytest.approx(2.0)
        assert rates["b"] == pytest.approx(8.0)

    def test_linkless_flow_with_cap(self, solver):
        rates = solver({"f": []}, {}, {"f": 3.0})
        assert rates["f"] == pytest.approx(3.0)

    def test_loose_cap_does_not_bind(self, solver):
        rates = solver({"f": ["l"]}, {"l": 5.0}, {"f": 100.0})
        assert rates["f"] == pytest.approx(5.0)


class TestMaxMinProperties:
    def test_multi_level_bottlenecks(self, solver):
        # l1 shared by a,b (cap 4); l2 shared by b,c (cap 10).
        # Max-min: a=b=2 (l1 level), then c fills l2: c=8.
        rates = solver(
            {"a": ["l1"], "b": ["l1", "l2"], "c": ["l2"]},
            {"l1": 4.0, "l2": 10.0},
        )
        assert rates["a"] == pytest.approx(2.0)
        assert rates["b"] == pytest.approx(2.0)
        assert rates["c"] == pytest.approx(8.0)

    def test_repeated_link_ids_in_path_charged_once(self, solver):
        # A path that repeats a link charges it once (set semantics).
        rates = solver({"f": ["l", "l"]}, {"l": 10.0})
        assert rates["f"] == pytest.approx(10.0)


def _flow_network(draw_links, draw_flows):
    """Build strategies for random small networks."""
    return draw_links, draw_flows


@st.composite
def random_instance(draw):
    n_links = draw(st.integers(1, 6))
    links = {f"l{i}": draw(st.floats(0.5, 100.0)) for i in range(n_links)}
    n_flows = draw(st.integers(1, 12))
    flows = {}
    caps = {}
    for i in range(n_flows):
        path_len = draw(st.integers(0, min(4, n_links)))
        path = draw(
            st.lists(st.sampled_from(sorted(links)), min_size=path_len,
                     max_size=path_len, unique=True)
        )
        flows[f"f{i}"] = path
        if draw(st.booleans()):
            caps[f"f{i}"] = draw(st.floats(0.1, 50.0))
        elif not path:
            caps[f"f{i}"] = draw(st.floats(0.1, 50.0))
    return flows, links, caps


class TestPropertyBased:
    @pytest.mark.skipif(_np is None, reason="numpy not installed")
    @given(random_instance())
    @settings(max_examples=200, deadline=None)
    def test_implementations_agree(self, instance):
        flows, links, caps = instance
        py = max_min_rates_py(flows, links, caps)
        np_ = max_min_rates_np(flows, links, caps)
        for flow_id in flows:
            assert py[flow_id] == pytest.approx(np_[flow_id], rel=1e-6, abs=1e-6)

    @given(random_instance())
    @settings(max_examples=200, deadline=None)
    def test_no_link_overloaded(self, instance):
        flows, links, caps = instance
        rates = max_min_rates(flows, links, caps)
        for link, capacity in links.items():
            load = sum(
                rates[f] for f, path in flows.items() if link in path
            )
            assert load <= capacity * (1 + 1e-6)

    @given(random_instance())
    @settings(max_examples=200, deadline=None)
    def test_caps_respected(self, instance):
        flows, links, caps = instance
        rates = max_min_rates(flows, links, caps)
        for flow_id, cap in caps.items():
            assert rates[flow_id] <= cap * (1 + 1e-6)

    @given(random_instance())
    @settings(max_examples=200, deadline=None)
    def test_rates_positive(self, instance):
        flows, links, caps = instance
        rates = max_min_rates(flows, links, caps)
        for flow_id in flows:
            assert rates[flow_id] > 0

    @given(random_instance())
    @settings(max_examples=100, deadline=None)
    def test_pareto_efficiency_on_links(self, instance):
        """Every flow is blocked by a saturated link or its cap (work
        conservation): no flow could be raised without hurting another."""
        flows, links, caps = instance
        rates = max_min_rates(flows, links, caps)
        loads = {
            link: sum(rates[f] for f, path in flows.items() if link in path)
            for link in links
        }
        for flow_id, path in flows.items():
            if rates[flow_id] == math.inf:
                continue
            at_cap = flow_id in caps and rates[flow_id] >= caps[flow_id] * (1 - 1e-6)
            on_saturated = any(
                loads[link] >= links[link] * (1 - 1e-6) for link in path
            )
            assert at_cap or on_saturated
