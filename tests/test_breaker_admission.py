"""Unit and integration tests: circuit breakers, admission control,
retry deadlines -- the shim half of the overload-control plane."""

import pytest

from repro.aggbox.functions import SumFunction
from repro.aggbox.overload import OverloadPolicy
from repro.aggregation import deploy_boxes
from repro.core import (
    AdmissionController,
    AdmissionNack,
    AdmissionPolicy,
    BreakerBoard,
    BreakerPolicy,
    CircuitBreaker,
    NetAggPlatform,
    OverloadConfig,
    TokenBucket,
)
from repro.core.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerTransition,
    assert_legal_breaker_transitions,
)
from repro.core.admission import QUEUE_DEPTH, RATE_LIMIT
from repro.faults import (
    BOX_CRASH,
    BOX_RECOVER,
    BOX_SHED,
    FaultEvent,
    FaultSchedule,
    PlatformFaultInjector,
    RetryPolicy,
)
from repro.topology import ThreeTierParams, three_tier
from repro.wire.serializer import read_float, write_float

SMALL = ThreeTierParams(
    n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2, hosts_per_tor=4
)

PARTIALS = [("host:4", 1.0), ("host:8", 2.0), ("host:12", 4.0),
            ("host:15", 8.0)]
TOTAL = 15.0


def make_platform(schedule=None, overload=None, retry=None):
    topo = three_tier(SMALL)
    deploy_boxes(topo)
    faults = PlatformFaultInjector(schedule) if schedule is not None \
        else None
    platform = NetAggPlatform(topo, faults=faults, retry=retry,
                              overload=overload)
    platform.register_app("sum", SumFunction(), write_float,
                          lambda b: read_float(b)[0])
    return platform


# ---------------------------------------------------------------------------
# TokenBucket / AdmissionController


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=2.0, burst=3.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)        # burst exhausted
        assert not bucket.try_take(0.4)        # 0.8 tokens < 1
        assert bucket.try_take(0.5)            # exactly 1 token refilled
        assert bucket.available(10.0) == 3.0   # capped at burst

    def test_clock_never_runs_backwards(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.try_take(5.0)
        assert not bucket.try_take(4.0)  # stale timestamp: no refill

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=-1.0)


class TestAdmissionController:
    def test_rate_limit_nack_after_burst(self):
        ctl = AdmissionController(AdmissionPolicy(rate=1.0, burst=2.0))
        ctl.admit("solr", 0.0)
        ctl.admit("solr", 0.0)
        with pytest.raises(AdmissionNack) as err:
            ctl.admit("solr", 0.0)
        assert err.value.reason == RATE_LIMIT
        assert ctl.admitted == 2
        assert [n.reason for n in ctl.nacks] == [RATE_LIMIT]
        ctl.admit("solr", 1.0)  # refilled

    def test_tenants_have_independent_buckets(self):
        ctl = AdmissionController(AdmissionPolicy(rate=1.0, burst=1.0))
        ctl.admit("solr", 0.0)
        ctl.admit("hadoop", 0.0)
        with pytest.raises(AdmissionNack):
            ctl.admit("solr", 0.0)

    def test_queue_depth_gate_runs_first(self):
        ctl = AdmissionController(
            AdmissionPolicy(rate=1.0, burst=1.0, max_queue_depth=4))
        with pytest.raises(AdmissionNack) as err:
            ctl.admit("solr", 0.0, queue_depth=4)
        assert err.value.reason == QUEUE_DEPTH
        assert err.value.queue_depth == 4
        # The bucket was not charged by the refused request.
        ctl.admit("solr", 0.0, queue_depth=3)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(rate=0.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_queue_depth=0)


# ---------------------------------------------------------------------------
# CircuitBreaker


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        breaker = CircuitBreaker("b", BreakerPolicy(failure_threshold=3))
        breaker.record_failure(0.1)
        breaker.record_failure(0.2)
        assert breaker.state == CLOSED
        breaker.record_failure(0.3)
        assert breaker.state == OPEN
        assert not breaker.allow(0.4)

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker("b", BreakerPolicy(failure_threshold=2))
        breaker.record_failure(0.1)
        breaker.record_success(0.2)
        breaker.record_failure(0.3)
        assert breaker.state == CLOSED

    def test_half_open_probe_closes_on_success(self):
        policy = BreakerPolicy(failure_threshold=1, reset_timeout=0.5)
        breaker = CircuitBreaker("b", policy)
        breaker.record_failure(0.0)
        assert not breaker.allow(0.4)
        assert breaker.allow(0.5)              # reset timeout elapsed
        assert breaker.state == HALF_OPEN
        breaker.record_success(0.6)
        assert breaker.state == CLOSED

    def test_half_open_probe_reopens_on_failure(self):
        policy = BreakerPolicy(failure_threshold=1, reset_timeout=0.5)
        breaker = CircuitBreaker("b", policy)
        breaker.record_failure(0.0)
        assert breaker.allow(0.5)
        breaker.record_failure(0.6)
        assert breaker.state == OPEN
        assert not breaker.allow(1.0)          # timeout restarted at 0.6
        assert breaker.allow(1.1)

    def test_transitions_recorded_and_legal(self):
        policy = BreakerPolicy(failure_threshold=1, reset_timeout=0.5)
        board = BreakerBoard(policy)
        board.breaker("b1").record_failure(0.0)
        board.breaker("b2").record_failure(0.0)
        assert board.breaker("b1").allow(0.7)
        board.breaker("b1").record_success(0.8)
        trace = board.transitions()
        assert [(t.at, t.target) for t in trace] == sorted(
            (t.at, t.target) for t in trace)
        assert_legal_breaker_transitions(trace)
        assert board.states() == {"b1": CLOSED, "b2": OPEN}

    def test_assert_legal_rejects_bad_trace(self):
        with pytest.raises(AssertionError):
            assert_legal_breaker_transitions([
                BreakerTransition(at=0.0, target="b", frm=OPEN, to=CLOSED),
            ])

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(reset_timeout=0.0)
        with pytest.raises(ValueError):
            BreakerPolicy(success_threshold=0)


# ---------------------------------------------------------------------------
# RetryPolicy deadline (satellite)


class TestRetryDeadline:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(deadline=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=-1.0)

    def test_worst_case_clock_capped_by_deadline(self):
        unbounded = RetryPolicy(max_attempts=10, timeout=1.0)
        bounded = RetryPolicy(max_attempts=10, timeout=1.0, deadline=2.0)
        assert bounded.worst_case_clock() <= unbounded.worst_case_clock()
        assert bounded.worst_case_clock() <= 2.0 + bounded.timeout

    def test_deadline_stops_retries_and_emits_event(self):
        topo = three_tier(SMALL)
        deploy_boxes(topo)
        box_ids = sorted(info.box_id for info in topo.all_boxes())
        schedule = FaultSchedule([
            FaultEvent(0.0, BOX_CRASH, b) for b in box_ids
        ])
        retry = RetryPolicy(max_attempts=8, timeout=0.1, deadline=0.15)
        platform = make_platform(schedule, retry=retry)
        outcome = platform.execute_request("sum", "r1", "host:0", PARTIALS)
        assert outcome.value == TOTAL
        deadlines = outcome.events_of_kind("deadline")
        assert deadlines
        # The budget binds before the attempt cap: never all 8 attempts.
        for box_id in box_ids:
            attempts = [e.attempt for e in outcome.shim_events
                        if e.kind == "retry" and e.target == box_id]
            assert len(attempts) < 8


# ---------------------------------------------------------------------------
# Platform integration


class TestPlatformAdmission:
    def test_nack_raised_before_any_tree_work(self):
        overload = OverloadConfig(
            admission=AdmissionPolicy(rate=0.5, burst=1.0))
        platform = make_platform(overload=overload)
        assert platform.execute_request(
            "sum", "r1", "host:0", PARTIALS).value == TOTAL
        with pytest.raises(AdmissionNack) as err:
            platform.execute_request("sum", "r2", "host:0", PARTIALS)
        assert err.value.reason == RATE_LIMIT
        assert err.value.tenant == "sum"
        assert platform.admission.admitted == 1

    def test_explicit_tenant_and_recovery_over_time(self):
        overload = OverloadConfig(
            admission=AdmissionPolicy(rate=1.0, burst=1.0))
        platform = make_platform(overload=overload)
        platform.execute_request("sum", "r1", "host:0", PARTIALS,
                                 tenant="gold")
        # A different tenant has its own bucket.
        platform.execute_request("sum", "r2", "host:0", PARTIALS,
                                 tenant="bronze")
        with pytest.raises(AdmissionNack):
            platform.execute_request("sum", "r3", "host:0", PARTIALS,
                                     tenant="gold")
        platform.advance_clock(platform.clock + 1.0)
        platform.execute_request("sum", "r4", "host:0", PARTIALS,
                                 tenant="gold")


class TestPlatformBreakers:
    def test_dead_box_trips_breaker_and_fails_fast(self):
        topo = three_tier(SMALL)
        deploy_boxes(topo)
        victim = sorted(info.box_id for info in topo.all_boxes())[0]
        schedule = FaultSchedule([FaultEvent(0.0, BOX_CRASH, victim)])
        overload = OverloadConfig(
            breaker=BreakerPolicy(failure_threshold=2, reset_timeout=50.0))
        platform = make_platform(schedule, overload=overload)

        tripped = False
        for i in range(12):
            outcome = platform.execute_request(
                "sum", f"r{i}", "host:0", PARTIALS)
            assert outcome.value == TOTAL
            if outcome.events_of_kind("breaker-open"):
                tripped = True
                # Fail-fast: no retry clock burnt against the victim.
                assert not [e for e in outcome.shim_events
                            if e.kind == "retry" and e.target == victim]
        assert tripped
        assert platform.breakers.states()[victim] == OPEN
        assert_legal_breaker_transitions(platform.breakers.transitions())

    def test_breaker_recloses_after_box_recovers(self):
        topo = three_tier(SMALL)
        deploy_boxes(topo)
        victim = sorted(info.box_id for info in topo.all_boxes())[0]
        schedule = FaultSchedule([
            FaultEvent(0.0, BOX_CRASH, victim),
            FaultEvent(1.0, BOX_RECOVER, victim),
        ])
        overload = OverloadConfig(
            breaker=BreakerPolicy(failure_threshold=1, reset_timeout=0.2))
        platform = make_platform(schedule, overload=overload)
        for i in range(30):
            platform.advance_clock(i * 0.1)
            platform.execute_request("sum", f"r{i}", "host:0", PARTIALS)
        assert platform.breakers.states()[victim] == CLOSED
        assert_legal_breaker_transitions(platform.breakers.transitions())


class TestPlatformHealthNacks:
    def test_shed_window_nacks_box_out_of_plan(self):
        topo = three_tier(SMALL)
        deploy_boxes(topo)
        box_ids = sorted(info.box_id for info in topo.all_boxes())
        schedule = FaultSchedule([
            FaultEvent(0.0, BOX_SHED, b, duration=10.0) for b in box_ids
        ])
        platform = make_platform(schedule, overload=OverloadConfig())
        outcome = platform.execute_request("sum", "r1", "host:0", PARTIALS)
        assert outcome.value == TOTAL
        nacks = outcome.events_of_kind("nack")
        assert nacks and all(e.detail == "shed-window" for e in nacks)
        assert outcome.boxes_used == []       # everything went direct
        assert not outcome.events_of_kind("unreachable")

    def test_health_feed_visible_in_report(self):
        overload = OverloadConfig(queue=OverloadPolicy(max_pending=2))
        platform = make_platform(overload=overload)
        report = platform.health_report()
        assert set(report) == {
            info.box_id for info in platform.topology.all_boxes()}
        assert all(beat.state == "healthy" for beat in report.values())
