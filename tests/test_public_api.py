"""Public-API smoke tests: imports, exports and paper-scale builds."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.units",
    "repro.netsim",
    "repro.netsim.engine",
    "repro.netsim.fairness",
    "repro.netsim.incremental",
    "repro.netsim.network",
    "repro.netsim.routing",
    "repro.netsim.simulator",
    "repro.netsim.metrics",
    "repro.topology",
    "repro.topology.base",
    "repro.topology.threetier",
    "repro.topology.fattree",
    "repro.workload",
    "repro.workload.synthetic",
    "repro.workload.placement",
    "repro.workload.stragglers",
    "repro.aggregation",
    "repro.aggregation.base",
    "repro.aggregation.edge",
    "repro.aggregation.onpath",
    "repro.core",
    "repro.core.tree",
    "repro.core.shim",
    "repro.core.platform",
    "repro.core.failure",
    "repro.core.straggler",
    "repro.core.multicast",
    "repro.aggbox",
    "repro.aggbox.functions",
    "repro.aggbox.localtree",
    "repro.aggbox.scheduler",
    "repro.aggbox.box",
    "repro.aggbox.isolation",
    "repro.wire",
    "repro.wire.serializer",
    "repro.wire.framing",
    "repro.wire.records",
    "repro.apps.solr",
    "repro.apps.hadoop",
    "repro.cluster",
    "repro.cost",
    "repro.faults",
    "repro.faults.schedule",
    "repro.faults.retry",
    "repro.faults.inject",
    "repro.experiments",
    "repro.bench",
    "repro.serve",
    "repro.serve.service",
    "repro.serve.stats",
    "repro.serve.loadgen",
    "repro.serve.http",
    "repro.workload.openloop",
]

EXPERIMENT_MODULES = [
    "fig02_processing_rate", "fig03_cost", "fig06_fct_cdf",
    "fig07_nonagg_cdf", "fig08_output_ratio", "fig09_link_traffic",
    "fig10_agg_fraction", "fig11_oversub", "fig12_partial",
    "fig13_10g_scaleout", "fig14_stragglers", "fig15_localtree",
    "fig16_solr_throughput", "fig17_solr_latency", "fig18_solr_ratio",
    "fig19_solr_tworack", "fig20_solr_scaleout", "fig21_solr_scaleup",
    "fig22_hadoop_jobs", "fig23_hadoop_ratio", "fig24_hadoop_datasize",
    "fig25_fair_fixed", "fig26_fair_adaptive", "tab01_loc",
    "ablation_trees", "ablation_placement", "ablation_streaming",
    "ablation_routing", "ablation_multicast", "fig_failures",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_imports(package):
    module = importlib.import_module(package)
    assert module is not None


@pytest.mark.parametrize("package", [
    "repro", "repro.netsim", "repro.topology", "repro.workload",
    "repro.aggregation", "repro.core", "repro.aggbox", "repro.wire",
    "repro.cluster", "repro.cost", "repro.faults", "repro.experiments",
    "repro.serve",
])
def test_dunder_all_resolves(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("name", EXPERIMENT_MODULES)
def test_experiment_modules_expose_run_and_main(name):
    module = importlib.import_module(f"repro.experiments.{name}")
    assert callable(module.run)
    assert callable(module.main)


def test_experiment_api_at_top_level():
    """The experiment runner and scale presets re-export from the root."""
    from repro import BENCH, DEFAULT, PAPER, QUICK, SimScale, simulate

    for preset in (QUICK, BENCH, DEFAULT, PAPER):
        assert isinstance(preset, SimScale)
    assert callable(simulate)


def test_version():
    assert repro.__version__


def test_fault_api_at_top_level():
    """Fault *schedules* are public; per-layer injectors are not."""
    from repro import FaultEvent, FaultSchedule, RetryPolicy

    schedule = FaultSchedule([FaultEvent(1.0, "box-crash", "box:tor:0:0")])
    assert len(schedule) == 1
    assert RetryPolicy().max_attempts >= 1


def test_serve_api_at_top_level():
    """The serving layer's entry points re-export from the root."""
    from repro import (
        AggregationService,
        OpenLoopParams,
        ServeConfig,
        TenantPolicy,
        run_loadgen,
        serve_forever,
    )

    assert callable(run_loadgen) and callable(serve_forever)
    assert callable(AggregationService)
    assert TenantPolicy().slo > 0
    assert ServeConfig().admission
    assert OpenLoopParams().tenants >= 1


def test_stable_surface_no_leaks():
    """``repro.__all__`` is the whole contract: every name resolves,
    injectors moved out, and no internal name leaks to the top level
    as an eagerly-bound public attribute."""
    for name in repro.__all__:
        assert getattr(repro, name) is not None, f"repro.{name} missing"
    # Per-layer fault injectors are submodule API now, not top-level.
    for internal in ("SimFaultInjector", "PlatformFaultInjector",
                     "EmulatorFaultInjector"):
        with pytest.raises(AttributeError):
            getattr(repro, internal)
    # Everything public and eagerly bound on the package (other than
    # submodules Python inserts on import) must be declared in __all__.
    import types

    allowed = set(repro.__all__) | {"annotations"}
    leaked = [
        name for name, value in vars(repro).items()
        if not name.startswith("_")
        and not isinstance(value, types.ModuleType)
        and name not in allowed
    ]
    assert not leaked, f"undeclared public names on repro: {leaked}"


def test_paper_scale_topology_builds():
    """The paper's 1,024-server topology constructs quickly."""
    from repro.aggregation import deploy_boxes
    from repro.topology import ThreeTierParams, three_tier

    params = ThreeTierParams()
    topo = three_tier(params)
    assert len(topo.hosts()) == 1024
    n_boxes = deploy_boxes(topo)
    assert n_boxes == 64 + 16 + 8
    paths = topo.equal_cost_paths("host:0", "host:1023")
    assert len(paths) == 2 * 8 * 2  # aggr x core x aggr lanes


def test_paper_scale_tree_construction():
    from repro.aggregation import deploy_boxes
    from repro.core.tree import TreeBuilder
    from repro.topology import ThreeTierParams, three_tier

    topo = three_tier(ThreeTierParams())
    deploy_boxes(topo)
    builder = TreeBuilder(topo)
    workers = [f"host:{i * 16}" for i in range(1, 40)]
    trees = builder.build_many("big-job", "host:0", workers, 4)
    assert len(trees) == 4
    for tree in trees:
        assert len(tree.roots()) >= 1
        assert set(tree.worker_entry) == set(range(len(workers)))
