"""Tests for the functional agg-box runtime."""

import pytest

from repro.aggbox.box import AggBoxRuntime, AppBinding
from repro.aggbox.functions import SumFunction, TopKFunction
from repro.wire.framing import frame
from repro.wire.records import (
    SearchResult,
    decode_search_results,
    encode_search_results,
)
from repro.wire.serializer import read_float, write_float


def float_binding(app="sum"):
    return AppBinding(
        app=app,
        function=SumFunction(),
        deserialise=lambda b: read_float(b)[0],
        serialise=write_float,
    )


def topk_binding(k=3):
    return AppBinding(
        app="solr",
        function=TopKFunction(k=k),
        deserialise=decode_search_results,
        serialise=encode_search_results,
    )


def make_box(*bindings):
    box = AggBoxRuntime("box:test")
    for binding in bindings or (float_binding(),):
        box.register_app(binding)
    return box


class TestRegistration:
    def test_apps_listed(self):
        box = make_box(float_binding("a"), float_binding("b"))
        assert box.apps() == ["a", "b"]

    def test_duplicate_rejected(self):
        box = make_box()
        with pytest.raises(ValueError):
            box.register_app(float_binding())

    def test_unknown_app_rejected(self):
        box = make_box()
        with pytest.raises(KeyError):
            box.submit_partial("ghost", "r", "w0", 1.0)

    def test_binding_accessor(self):
        box = make_box()
        assert box.binding("sum").app == "sum"


class TestPartialCollection:
    def test_emits_when_expected_count_reached(self):
        box = make_box()
        box.announce("sum", "r1", expected=3)
        assert box.submit_partial("sum", "r1", "w0", 1.0) is None
        assert box.submit_partial("sum", "r1", "w1", 2.0) is None
        ready = box.submit_partial("sum", "r1", "w2", 3.0)
        assert ready is not None
        assert ready.value == 6.0
        assert set(ready.sources) == {"w0", "w1", "w2"}

    def test_no_emit_without_announcement(self):
        box = make_box()
        assert box.submit_partial("sum", "r1", "w0", 1.0) is None
        assert box.pending_requests()

    def test_announcement_after_partials(self):
        box = make_box()
        box.submit_partial("sum", "r1", "w0", 1.0)
        box.announce("sum", "r1", expected=1)
        # Completion is checked on the next submission or flush.
        ready = box.flush("sum", "r1")
        assert ready is not None and ready.value == 1.0

    def test_conflicting_announcements_rejected(self):
        box = make_box()
        box.announce("sum", "r1", expected=2)
        with pytest.raises(ValueError):
            box.announce("sum", "r1", expected=3)

    def test_duplicate_source_dropped(self):
        box = make_box()
        box.announce("sum", "r1", expected=2)
        box.submit_partial("sum", "r1", "w0", 1.0)
        assert box.submit_partial("sum", "r1", "w0", 99.0) is None
        ready = box.submit_partial("sum", "r1", "w1", 2.0)
        assert ready.value == 3.0

    def test_requests_are_isolated(self):
        box = make_box()
        box.announce("sum", "r1", expected=1)
        box.announce("sum", "r2", expected=1)
        first = box.submit_partial("sum", "r1", "w0", 5.0)
        second = box.submit_partial("sum", "r2", "w0", 7.0)
        assert first.value == 5.0
        assert second.value == 7.0


class TestStreamingChunks:
    def test_chunked_delivery(self):
        box = make_box(topk_binding())
        box.announce("solr", "r", expected=2)
        payload_a = frame(encode_search_results([SearchResult(1, 9.0)]))
        payload_b = frame(encode_search_results([SearchResult(2, 5.0)]))
        # Deliver byte by byte.
        for byte in payload_a:
            box.submit_chunk("solr", "r", "w0", bytes([byte]))
        ready = None
        for byte in payload_b:
            out = box.submit_chunk("solr", "r", "w1", bytes([byte]))
            if out is not None:
                ready = out
        assert ready is not None
        assert [r.doc_id for r in ready.value] == [1, 2]

    def test_payload_roundtrips_through_serialiser(self):
        box = make_box(topk_binding(k=1))
        box.announce("solr", "r", expected=1)
        payload = frame(encode_search_results(
            [SearchResult(7, 3.5, "snip")]
        ))
        ready = box.submit_chunk("solr", "r", "w0", payload)
        assert decode_search_results(ready.payload) == \
            [SearchResult(7, 3.5, "snip")]


class TestFlushAndRecovery:
    def test_flush_aggregates_available_results(self):
        """Straggler handling: aggregate what arrived (§3.1)."""
        box = make_box()
        box.announce("sum", "r", expected=3)
        box.submit_partial("sum", "r", "w0", 1.0)
        box.submit_partial("sum", "r", "w1", 2.0)
        ready = box.flush("sum", "r")
        assert ready.value == 3.0

    def test_flush_empty_request_is_none(self):
        box = make_box()
        assert box.flush("sum", "nothing") is None

    def test_last_processed_supports_dedup(self):
        box = make_box()
        box.announce("sum", "r", expected=2)
        box.submit_partial("sum", "r", "w0", 1.0)
        box.submit_partial("sum", "r", "w1", 2.0)
        assert set(box.last_processed("sum", "r")) == {"w0", "w1"}
        # A recovery resend from an already-processed source is dropped.
        assert box.submit_partial("sum", "r", "w0", 1.0) is None

    def test_announce_validation(self):
        box = make_box()
        with pytest.raises(ValueError):
            box.announce("sum", "r", expected=0)
