"""Tests for the vectorized (numpy) max-min solver backend.

Mirrors ``test_incremental.py``: the property suite drives
:class:`VectorizedMaxMin` through random histories of flow arrivals,
completions, reroutes and capacity changes and cross-checks every
intermediate allocation against both the exact batch solver
(:func:`repro.netsim.fairness.max_min_rates_py` from scratch) and the
pure-Python :class:`IncrementalMaxMin` warm solver -- the three
implementations must agree to ~1e-9 on the unique max-min allocation.

The whole module is skipped when numpy is not importable (the CI
no-numpy leg); ``make_solver``'s fallback keeps its own coverage in
``TestBackendSelection``.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.fairness import max_min_rates_py
from repro.netsim.incremental import IncrementalMaxMin
from repro.netsim.vectorized import (
    HAVE_NUMPY,
    SOLVER_BACKENDS,
    make_solver,
)

if HAVE_NUMPY:
    from repro.netsim.vectorized import VectorizedMaxMin

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy backend unavailable")

REL = 1e-9
ABS = 1e-9


def assert_matches_exact(solver, flows, links, caps):
    got = solver.rates()
    want = max_min_rates_py(flows, links, caps)
    assert set(got) == set(want)
    for flow_id in want:
        if math.isinf(want[flow_id]):
            assert math.isinf(got[flow_id]), flow_id
        else:
            assert got[flow_id] == pytest.approx(
                want[flow_id], rel=REL, abs=ABS), flow_id


class TestBackendSelection:
    def test_make_solver_knob(self):
        caps = {"l": 1.0}
        assert isinstance(make_solver(caps, "incremental"),
                          IncrementalMaxMin)
        assert isinstance(make_solver(caps, "vectorized"),
                          VectorizedMaxMin)
        # auto prefers numpy when importable (it is, in this test).
        assert isinstance(make_solver(caps, "auto"), VectorizedMaxMin)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown solver backend"):
            make_solver({"l": 1.0}, "turbo")

    def test_backends_tuple_is_the_knob_vocabulary(self):
        assert set(SOLVER_BACKENDS) == {"auto", "vectorized",
                                        "incremental"}


class TestBasics:
    def test_empty(self):
        solver = VectorizedMaxMin({"l": 10.0})
        assert dict(solver.rates()) == {}
        assert len(solver) == 0

    def test_single_flow_gets_full_link(self):
        solver = VectorizedMaxMin({"l": 10.0})
        solver.add_flow("f", ["l"])
        assert solver.rate("f") == pytest.approx(10.0)
        assert "f" in solver

    def test_classic_three_flow_example(self):
        solver = VectorizedMaxMin({"l1": 10.0, "l2": 6.0})
        solver.add_flow("a", ["l1"])
        solver.add_flow("b", ["l1", "l2"])
        solver.add_flow("c", ["l2"])
        rates = solver.rates()
        assert rates["b"] == pytest.approx(3.0)
        assert rates["c"] == pytest.approx(3.0)
        assert rates["a"] == pytest.approx(7.0)

    def test_removal_redistributes(self):
        solver = VectorizedMaxMin({"l": 9.0})
        for fid in ("a", "b", "c"):
            solver.add_flow(fid, ["l"])
        assert solver.rate("a") == pytest.approx(3.0)
        solver.remove_flow("b")
        rates = solver.rates()
        assert rates["a"] == pytest.approx(4.5)
        assert "b" not in rates

    def test_rate_cap_binds(self):
        solver = VectorizedMaxMin({"l": 10.0})
        solver.add_flow("a", ["l"], rate_cap=2.0)
        solver.add_flow("b", ["l"])
        rates = solver.rates()
        assert rates["a"] == pytest.approx(2.0)
        assert rates["b"] == pytest.approx(8.0)

    def test_linkless_flow_unbounded_or_capped(self):
        solver = VectorizedMaxMin({})
        solver.add_flow("free", [])
        solver.add_flow("capped", [], rate_cap=3.0)
        rates = solver.rates()
        assert math.isinf(rates["free"])
        assert rates["capped"] == pytest.approx(3.0)

    def test_repeated_link_charged_once(self):
        solver = VectorizedMaxMin({"l": 10.0})
        solver.add_flow("f", ["l", "l"])
        assert solver.rate("f") == pytest.approx(10.0)

    def test_set_capacity_down_and_up(self):
        solver = VectorizedMaxMin({"l": 10.0})
        solver.add_flow("a", ["l"])
        solver.add_flow("b", ["l"])
        solver.rates()
        solver.set_capacity("l", 4.0)
        assert solver.rate("a") == pytest.approx(2.0)
        solver.set_capacity("l", 0.0)
        assert solver.rate("a") == pytest.approx(0.0)
        solver.set_capacity("l", 12.0)
        assert solver.rate("b") == pytest.approx(6.0)

    def test_reroute(self):
        solver = VectorizedMaxMin({"l1": 10.0, "l2": 2.0})
        solver.add_flow("a", ["l1"])
        solver.add_flow("b", ["l1"])
        solver.rates()
        solver.reroute("b", ["l2"])
        rates = solver.rates()
        assert rates["a"] == pytest.approx(10.0)
        assert rates["b"] == pytest.approx(2.0)

    def test_duplicate_flow_rejected(self):
        solver = VectorizedMaxMin({"l": 1.0})
        solver.add_flow("f", ["l"])
        with pytest.raises(ValueError):
            solver.add_flow("f", ["l"])

    def test_unknown_link_rejected(self):
        solver = VectorizedMaxMin({"l": 1.0})
        with pytest.raises(KeyError):
            solver.add_flow("f", ["nope"])
        with pytest.raises(KeyError):
            solver.set_capacity("nope", 1.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            VectorizedMaxMin({"l": -1.0})
        solver = VectorizedMaxMin({"l": 1.0})
        with pytest.raises(ValueError):
            solver.set_capacity("l", -2.0)

    def test_slot_and_rates_array_view(self):
        solver = VectorizedMaxMin({"l": 6.0})
        s_a = solver.add_flow("a", ["l"])
        s_b = solver.add_flow("b", ["l"])
        assert s_a != s_b
        assert solver.slot("a") == s_a
        vec = solver.rates_array()
        assert vec[s_a] == pytest.approx(3.0)
        assert vec[s_b] == pytest.approx(3.0)
        solver.remove_flow("a")
        solver.rates()
        assert solver.rates_array()[s_a] == 0.0

    def test_edge_compaction_preserves_allocation(self):
        """A reroute storm crosses the dead-edge compaction threshold;
        the allocation must stay exact throughout."""
        solver = VectorizedMaxMin({"l1": 8.0, "l2": 4.0})
        solver.add_flow("pin", ["l1", "l2"])
        for i in range(400):
            fid = f"f{i}"
            solver.add_flow(fid, ["l1", "l2"])
            solver.rates()
            solver.remove_flow(fid)
        rates = solver.rates()
        assert rates["pin"] == pytest.approx(4.0)
        assert len(solver) == 1


@pytest.mark.parametrize("backend", ["vectorized", "incremental"])
class TestCacheHits:
    """The dead solver-cache path, pinned: provably no-op perturbation
    batches must answer ``rates()`` from cache on both backends (the
    counter behind ``netsim.solver.cache_hits``)."""

    def test_clean_state_rates_hits_cache(self, backend):
        solver = make_solver({"l": 10.0}, backend)
        solver.add_flow("f", ["l"])
        solver.rates()
        solves = solver.stats.solves
        solver.rates()
        solver.rates()
        assert solver.stats.solves == solves
        assert solver.stats.cache_hits >= 2

    def test_same_value_set_capacity_is_noop(self, backend):
        solver = make_solver({"l": 10.0}, backend)
        solver.add_flow("f", ["l"])
        solver.rates()
        solves = solver.stats.solves
        hits = solver.stats.cache_hits
        solver.set_capacity("l", 10.0)
        solver.rates()
        assert solver.stats.solves == solves
        assert solver.stats.cache_hits == hits + 1

    def test_add_then_remove_in_one_batch_cancels(self, backend):
        solver = make_solver({"l": 10.0}, backend)
        solver.add_flow("f", ["l"])
        solver.rates()
        solves = solver.stats.solves
        hits = solver.stats.cache_hits
        solver.add_flow("ghost", ["l"])
        solver.remove_flow("ghost")
        solver.rates()
        assert solver.stats.solves == solves
        assert solver.stats.cache_hits == hits + 1
        assert solver.rate("f") == pytest.approx(10.0)

    def test_identity_reroute_is_noop(self, backend):
        solver = make_solver({"l1": 10.0, "l2": 5.0}, backend)
        solver.add_flow("f", ["l1", "l2"], rate_cap=None)
        solver.rates()
        solves = solver.stats.solves
        hits = solver.stats.cache_hits
        solver.reroute("f", ["l1", "l2"], rate_cap=None)
        solver.rates()
        assert solver.stats.solves == solves
        assert solver.stats.cache_hits == hits + 1


@st.composite
def random_history(draw):
    """A capacity map plus a random op history over it (same shape as
    ``test_incremental.random_history``)."""
    n_links = draw(st.integers(1, 6))
    links = {f"l{i}": draw(st.floats(0.5, 100.0)) for i in range(n_links)}
    link_ids = sorted(links)
    ops = []
    active = []
    n_ops = draw(st.integers(1, 30))
    next_fid = 0
    for _ in range(n_ops):
        kind = draw(st.sampled_from(
            ["add", "add", "add", "remove", "reroute", "capacity",
             "solve"]))
        if kind == "add" or (kind in ("remove", "reroute") and not active):
            fid = f"f{next_fid}"
            next_fid += 1
            path_len = draw(st.integers(0, min(4, n_links)))
            path = draw(st.lists(st.sampled_from(link_ids),
                                 min_size=path_len, max_size=path_len,
                                 unique=True))
            cap = draw(st.floats(0.1, 50.0)) \
                if (not path or draw(st.booleans())) else None
            ops.append(("add", fid, path, cap))
            active.append(fid)
        elif kind == "remove":
            fid = draw(st.sampled_from(active))
            active.remove(fid)
            ops.append(("remove", fid))
        elif kind == "reroute":
            fid = draw(st.sampled_from(active))
            path_len = draw(st.integers(0, min(4, n_links)))
            path = draw(st.lists(st.sampled_from(link_ids),
                                 min_size=path_len, max_size=path_len,
                                 unique=True))
            cap = draw(st.floats(0.1, 50.0)) \
                if (not path or draw(st.booleans())) else None
            ops.append(("reroute", fid, path, cap))
        elif kind == "capacity":
            link = draw(st.sampled_from(link_ids))
            value = draw(st.one_of(st.just(0.0), st.floats(0.5, 100.0)))
            ops.append(("capacity", link, value))
        else:
            ops.append(("solve",))
    return links, ops


def _apply(solver, op):
    if op[0] == "add":
        solver.add_flow(op[1], op[2], rate_cap=op[3])
    elif op[0] == "remove":
        solver.remove_flow(op[1])
    elif op[0] == "reroute":
        solver.reroute(op[1], op[2], rate_cap=op[3])
    elif op[0] == "capacity":
        solver.set_capacity(op[1], op[2])


def _track(flows, caps, capacities, op):
    if op[0] == "add":
        flows[op[1]] = op[2]
        if op[3] is not None:
            caps[op[1]] = op[3]
    elif op[0] == "remove":
        del flows[op[1]]
        caps.pop(op[1], None)
    elif op[0] == "reroute":
        flows[op[1]] = op[2]
        caps.pop(op[1], None)
        if op[3] is not None:
            caps[op[1]] = op[3]
    elif op[0] == "capacity":
        capacities[op[1]] = op[2]


class TestPropertyBased:
    @given(random_history())
    @settings(max_examples=200, deadline=None)
    def test_matches_exact_solver_throughout(self, history):
        """After every mutation batch, the vectorized allocation equals
        a from-scratch exact solve of the current instance."""
        links, ops = history
        capacities = dict(links)
        solver = VectorizedMaxMin(capacities)
        flows, caps = {}, {}
        for op in ops:
            if op[0] == "solve":
                assert_matches_exact(solver, flows, capacities, caps)
            else:
                _apply(solver, op)
                _track(flows, caps, capacities, op)
        assert_matches_exact(solver, flows, capacities, caps)

    @given(random_history())
    @settings(max_examples=100, deadline=None)
    def test_agrees_with_incremental_backend(self, history):
        """Both warm backends walk the same history and agree at every
        interleaved solve point -- the drop-in-replacement property the
        ``solver=`` knob relies on."""
        links, ops = history
        vec = VectorizedMaxMin(dict(links))
        inc = IncrementalMaxMin(dict(links))
        for op in ops:
            if op[0] == "solve":
                got_v, got_i = vec.rates(), inc.rates()
                assert set(got_v) == set(got_i)
                for fid, want in got_i.items():
                    if math.isinf(want):
                        assert math.isinf(got_v[fid]), fid
                    else:
                        assert got_v[fid] == pytest.approx(
                            want, rel=REL, abs=ABS), fid
            else:
                _apply(vec, op)
                _apply(inc, op)
        got_v, got_i = vec.rates(), inc.rates()
        for fid, want in got_i.items():
            if math.isinf(want):
                assert math.isinf(got_v[fid]), fid
            else:
                assert got_v[fid] == pytest.approx(
                    want, rel=REL, abs=ABS), fid

    @given(random_history())
    @settings(max_examples=60, deadline=None)
    def test_lockstep_sweep_matches_exact(self, history):
        """Forcing every region through the lock-step array sweep (the
        large-region path) must not change any allocation.  (Manual
        save/restore rather than the monkeypatch fixture: hypothesis
        forbids function-scoped fixtures inside ``@given``.)"""
        import repro.netsim.vectorized as vectorized
        links, ops = history
        capacities = dict(links)
        saved = vectorized._LOCKSTEP_MIN_REGION
        vectorized._LOCKSTEP_MIN_REGION = 0
        try:
            solver = VectorizedMaxMin(capacities)
            flows, caps = {}, {}
            for op in ops:
                if op[0] == "solve":
                    assert_matches_exact(solver, flows, capacities, caps)
                else:
                    _apply(solver, op)
                    _track(flows, caps, capacities, op)
            assert_matches_exact(solver, flows, capacities, caps)
        finally:
            vectorized._LOCKSTEP_MIN_REGION = saved

    @given(random_history())
    @settings(max_examples=50, deadline=None)
    def test_no_link_overloaded_and_caps_respected(self, history):
        links, ops = history
        capacities = dict(links)
        solver = VectorizedMaxMin(capacities)
        flows, caps = {}, {}
        for op in ops:
            if op[0] != "solve":
                _apply(solver, op)
                _track(flows, caps, capacities, op)
        rates = solver.rates()
        for link, capacity in capacities.items():
            load = sum(rates[f] for f, path in flows.items()
                       if link in path)
            assert load <= capacity * (1 + 1e-6) + 1e-9
        for fid, cap in caps.items():
            assert rates[fid] <= cap * (1 + 1e-6)
