"""Tests for workload generation, placement and stragglers."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import ThreeTierParams, three_tier
from repro.units import KB, MB
from repro.workload import (
    AggJob,
    StragglerModel,
    WorkloadParams,
    generate_workload,
    inject_stragglers,
)
from repro.workload.placement import (
    LocalityAwarePlacer,
    PlacementError,
    RandomPlacer,
)
from repro.workload.synthetic import pareto_size, worker_count

SMALL = ThreeTierParams(
    n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2, hosts_per_tor=8
)


class TestAggJob:
    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            AggJob("j", "host:0", (("host:1", 1.0),), alpha=0.0)
        with pytest.raises(ValueError):
            AggJob("j", "host:0", (("host:1", 1.0),), alpha=1.5)

    def test_requires_workers(self):
        with pytest.raises(ValueError):
            AggJob("j", "host:0", (), alpha=0.5)

    def test_duplicate_worker_host_rejected(self):
        with pytest.raises(ValueError):
            AggJob("j", "host:0",
                   (("host:1", 1.0), ("host:1", 2.0)), alpha=0.5)

    def test_delay_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AggJob("j", "host:0", (("host:1", 1.0),), alpha=0.5,
                   worker_delays=(0.1, 0.2))

    def test_total_bytes(self):
        job = AggJob("j", "host:0",
                     (("host:1", 1.0), ("host:2", 2.0)), alpha=0.5)
        assert job.total_bytes == 3.0

    def test_delay_defaults_to_zero(self):
        job = AggJob("j", "host:0", (("host:1", 1.0),), alpha=0.5)
        assert job.delay_of(0) == 0.0


class TestParetoSize:
    @given(st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_within_bounds(self, seed):
        rng = random.Random(seed)
        size = pareto_size(rng, mean=100 * KB, shape=1.05, maximum=10 * MB)
        xm = 100 * KB * 0.05 / 1.05
        assert xm * 0.999 <= size <= 10 * MB

    def test_mean_roughly_matches(self):
        rng = random.Random(0)
        samples = [
            pareto_size(rng, mean=100.0, shape=2.5, maximum=1e9)
            for _ in range(20_000)
        ]
        assert sum(samples) / len(samples) == pytest.approx(100.0, rel=0.1)

    def test_shape_below_one_rejected(self):
        with pytest.raises(ValueError):
            pareto_size(random.Random(0), 100.0, 0.9, 1e9)


class TestWorkerCount:
    def test_power_law_80_percent_below_ten(self):
        rng = random.Random(1)
        params = WorkloadParams()
        counts = [worker_count(rng, params) for _ in range(20_000)]
        below_ten = sum(1 for c in counts if c < 10) / len(counts)
        # With shape 1.5 and xm=2: P(<10) = 1 - (2/10)^1.5 ~ 0.91;
        # the paper's study reports ~80%. Accept the bracket.
        assert 0.7 <= below_ten <= 0.95

    def test_bounds_respected(self):
        rng = random.Random(2)
        params = WorkloadParams(min_workers=3, max_workers=7)
        for _ in range(1000):
            c = worker_count(rng, params)
            assert 3 <= c <= 7


class TestLocalityAwarePlacer:
    def test_small_job_workers_fit_one_rack(self):
        topo = three_tier(SMALL)
        placer = LocalityAwarePlacer(topo, random.Random(3))
        placed = placer.place_job(4, with_master=True)
        master, workers = placed[0], placed[1:]
        worker_racks = {topo.rack_of(h) for h in workers}
        assert len(placed) == 5
        assert len(worker_racks) == 1
        # Masters (frontends/reducers) are remote by default.
        assert topo.rack_of(master) not in worker_racks

    def test_colocated_master_mode(self):
        topo = three_tier(SMALL)
        placer = LocalityAwarePlacer(topo, random.Random(3),
                                     remote_master=False)
        placed = placer.place_job(4, with_master=True)
        racks = {topo.rack_of(h) for h in placed}
        assert len(racks) == 1

    def test_large_job_spills_to_same_pod_first(self):
        topo = three_tier(SMALL)
        placer = LocalityAwarePlacer(topo, random.Random(3),
                                     remote_master=False)
        placed = placer.place_job(11, with_master=True)  # 12 hosts, rack=8
        pods = {topo.pod_of(h) for h in placed}
        assert len(pods) == 1

    def test_no_duplicate_hosts_within_job(self):
        topo = three_tier(SMALL)
        placer = LocalityAwarePlacer(topo, random.Random(3))
        placed = placer.place_job(20, with_master=True)
        assert len(set(placed)) == len(placed)

    def test_load_spreads_across_jobs(self):
        topo = three_tier(SMALL)
        placer = LocalityAwarePlacer(topo, random.Random(3))
        first = set(placer.place_job(7, with_master=True))
        second = set(placer.place_job(7, with_master=True))
        # The second job anchors at a different (less loaded) rack.
        assert first != second

    def test_too_big_job_rejected(self):
        topo = three_tier(SMALL)
        placer = LocalityAwarePlacer(topo, random.Random(3))
        with pytest.raises(PlacementError):
            placer.place_job(len(topo.hosts()) + 1)

    def test_without_master(self):
        topo = three_tier(SMALL)
        placer = LocalityAwarePlacer(topo, random.Random(3))
        assert len(placer.place_job(4, with_master=False)) == 4


class TestRandomPlacer:
    def test_distinct_hosts(self):
        topo = three_tier(SMALL)
        placer = RandomPlacer(topo, random.Random(4))
        placed = placer.place_job(10)
        assert len(set(placed)) == 11

    def test_too_big_rejected(self):
        topo = three_tier(SMALL)
        placer = RandomPlacer(topo, random.Random(4))
        with pytest.raises(PlacementError):
            placer.place_job(1000)


class TestGenerateWorkload:
    def test_deterministic_for_seed(self):
        topo = three_tier(SMALL)
        w1 = generate_workload(topo, WorkloadParams(n_flows=60), seed=9)
        w2 = generate_workload(three_tier(SMALL),
                               WorkloadParams(n_flows=60), seed=9)
        assert [j.workers for j in w1.jobs] == [j.workers for j in w2.jobs]
        assert [(b.src, b.dst, b.size) for b in w1.background] == \
               [(b.src, b.dst, b.size) for b in w2.background]

    def test_different_seeds_differ(self):
        topo = three_tier(SMALL)
        w1 = generate_workload(topo, WorkloadParams(n_flows=60), seed=1)
        w2 = generate_workload(three_tier(SMALL),
                               WorkloadParams(n_flows=60), seed=2)
        assert [j.workers for j in w1.jobs] != [j.workers for j in w2.jobs]

    def test_flow_budget_respected(self):
        topo = three_tier(SMALL)
        params = WorkloadParams(n_flows=100, aggregatable_fraction=0.4)
        workload = generate_workload(topo, params, seed=5)
        worker_flows = sum(len(j.workers) for j in workload.jobs)
        assert worker_flows + len(workload.background) == 100
        assert worker_flows == pytest.approx(40, abs=2)

    def test_all_aggregatable(self):
        topo = three_tier(SMALL)
        params = WorkloadParams(n_flows=40, aggregatable_fraction=1.0)
        workload = generate_workload(topo, params, seed=5)
        assert not workload.background
        assert sum(len(j.workers) for j in workload.jobs) == 40

    def test_none_aggregatable(self):
        topo = three_tier(SMALL)
        params = WorkloadParams(n_flows=40, aggregatable_fraction=0.0)
        workload = generate_workload(topo, params, seed=5)
        assert not workload.jobs
        assert len(workload.background) == 40

    def test_masters_are_not_workers(self):
        topo = three_tier(SMALL)
        workload = generate_workload(topo, WorkloadParams(n_flows=80), seed=6)
        for job in workload.jobs:
            assert job.master not in {h for h, _ in job.workers}

    def test_uniform_arrivals(self):
        topo = three_tier(SMALL)
        params = WorkloadParams(n_flows=80, arrival_process="uniform",
                                arrival_span=2.0)
        workload = generate_workload(topo, params, seed=6)
        starts = [j.start_time for j in workload.jobs] + [
            b.start_time for b in workload.background
        ]
        assert all(0.0 <= s <= 2.0 for s in starts)
        assert max(starts) > 0.0

    def test_simultaneous_arrivals_default(self):
        topo = three_tier(SMALL)
        workload = generate_workload(topo, WorkloadParams(n_flows=40),
                                     seed=6)
        starts = [j.start_time for j in workload.jobs] + [
            b.start_time for b in workload.background
        ]
        assert all(s == 0.0 for s in starts)

    def test_poisson_arrivals_spread(self):
        topo = three_tier(SMALL)
        params = WorkloadParams(n_flows=80, arrival_process="poisson",
                                arrival_span=4.0)
        workload = generate_workload(topo, params, seed=6)
        starts = sorted(
            b.start_time for b in workload.background
        )
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        assert all(s >= 0.0 for s in starts)
        assert max(starts) > 1.0  # genuinely spread over the span
        assert len(set(gaps)) > len(gaps) // 2  # irregular spacing

    def test_arrival_validation(self):
        with pytest.raises(ValueError):
            WorkloadParams(arrival_process="burst")
        with pytest.raises(ValueError):
            WorkloadParams(arrival_process="poisson", arrival_span=0.0)

    def test_n_trees_propagates(self):
        topo = three_tier(SMALL)
        params = WorkloadParams(n_flows=40, n_trees=3)
        workload = generate_workload(topo, params, seed=6)
        assert all(j.n_trees == 3 for j in workload.jobs)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            WorkloadParams(n_flows=0)
        with pytest.raises(ValueError):
            WorkloadParams(aggregatable_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadParams(alpha=0.0)
        with pytest.raises(ValueError):
            WorkloadParams(min_workers=5, max_workers=3)


class TestStragglers:
    def test_zero_ratio_no_delays(self):
        topo = three_tier(SMALL)
        workload = generate_workload(topo, WorkloadParams(n_flows=60), seed=7)
        delayed = inject_stragglers(workload, StragglerModel(ratio=0.0))
        for job in delayed.jobs:
            assert all(d == 0.0 for d in job.worker_delays)

    def test_full_ratio_all_delayed(self):
        topo = three_tier(SMALL)
        workload = generate_workload(topo, WorkloadParams(n_flows=60), seed=7)
        delayed = inject_stragglers(workload, StragglerModel(ratio=1.0))
        for job in delayed.jobs:
            assert all(d > 0.0 for d in job.worker_delays)

    def test_partial_ratio_mixes(self):
        topo = three_tier(SMALL)
        workload = generate_workload(
            topo, WorkloadParams(n_flows=200, aggregatable_fraction=1.0),
            seed=7,
        )
        delayed = inject_stragglers(workload, StragglerModel(ratio=0.5),
                                    seed=11)
        delays = [d for job in delayed.jobs for d in job.worker_delays]
        stragglers = sum(1 for d in delays if d > 0)
        assert 0 < stragglers < len(delays)

    def test_original_workload_untouched(self):
        topo = three_tier(SMALL)
        workload = generate_workload(topo, WorkloadParams(n_flows=60), seed=7)
        inject_stragglers(workload, StragglerModel(ratio=1.0))
        assert all(not job.worker_delays for job in workload.jobs)

    def test_invalid_model(self):
        with pytest.raises(ValueError):
            StragglerModel(ratio=-0.1)
        with pytest.raises(ValueError):
            StragglerModel(ratio=0.5, mean_delay=0.0)


class TestFragmentation:
    def test_zero_fragmentation_stays_local(self):
        topo = three_tier(SMALL)
        placer = LocalityAwarePlacer(topo, random.Random(3),
                                     remote_master=False,
                                     fragmentation=0.0)
        placed = placer.place_job(4, with_master=True)
        assert len({topo.rack_of(h) for h in placed}) == 1

    def test_full_fragmentation_scatters(self):
        topo = three_tier(SMALL)
        placer = LocalityAwarePlacer(topo, random.Random(3),
                                     remote_master=False,
                                     fragmentation=1.0)
        placed = placer.place_job(6, with_master=True)
        # The anchor slot (index 0) stays; everything else can move.
        assert len({topo.rack_of(h) for h in placed}) > 1

    def test_fragmented_hosts_still_distinct(self):
        topo = three_tier(SMALL)
        placer = LocalityAwarePlacer(topo, random.Random(3),
                                     fragmentation=0.5)
        for _ in range(5):
            placed = placer.place_job(8, with_master=True)
            assert len(set(placed)) == len(placed)

    def test_invalid_fragmentation_rejected(self):
        topo = three_tier(SMALL)
        with pytest.raises(ValueError):
            LocalityAwarePlacer(topo, random.Random(3), fragmentation=1.5)

    def test_workload_param_plumbs_through(self):
        topo = three_tier(SMALL)
        tight = generate_workload(
            topo, WorkloadParams(n_flows=120, aggregatable_fraction=1.0,
                                 fragmentation=0.0, max_workers=12),
            seed=4,
        )
        topo2 = three_tier(SMALL)
        loose = generate_workload(
            topo2, WorkloadParams(n_flows=120, aggregatable_fraction=1.0,
                                  fragmentation=0.9, max_workers=12),
            seed=4,
        )

        def mean_racks(workload, topo):
            spans = [
                len({topo.rack_of(h) for h, _ in job.workers})
                for job in workload.jobs
            ]
            return sum(spans) / len(spans)

        assert mean_racks(loose, topo2) > mean_racks(tight, topo)
