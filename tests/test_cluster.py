"""Tests for the testbed emulator (resources, Solr and Hadoop drivers)."""

import pytest

from repro.cluster import (
    HadoopEmulation,
    Resource,
    SolrEmulation,
    TestbedConfig,
    TransferChain,
)
from repro.cluster.emulator import Barrier
from repro.cluster.hadoop_driver import JobProfile, measure_job_profile
from repro.cluster.solr_driver import SolrEmulationParams
from repro.apps.hadoop import generate_text, wordcount_job
from repro.netsim.engine import EventQueue
from repro.units import GB


class TestResource:
    def test_single_job_service_time(self):
        queue = EventQueue()
        resource = Resource(queue, "nic", rate=10.0)
        done = []
        resource.request(50.0, lambda: done.append(queue.now))
        queue.run()
        assert done == [5.0]

    def test_fifo_ordering(self):
        queue = EventQueue()
        resource = Resource(queue, "nic", rate=10.0)
        done = []
        resource.request(10.0, lambda: done.append(("a", queue.now)))
        resource.request(10.0, lambda: done.append(("b", queue.now)))
        queue.run()
        assert done == [("a", 1.0), ("b", 2.0)]

    def test_multi_server_parallelism(self):
        queue = EventQueue()
        pool = Resource(queue, "cpu", rate=1.0, servers=2)
        done = []
        for _ in range(2):
            pool.request(1.0, lambda: done.append(queue.now))
        queue.run()
        assert done == [1.0, 1.0]

    def test_utilisation(self):
        queue = EventQueue()
        resource = Resource(queue, "nic", rate=10.0)
        resource.request(50.0, lambda: None)
        queue.run()
        assert resource.utilisation(10.0) == pytest.approx(0.5)
        assert resource.completed == 1

    def test_validation(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            Resource(queue, "bad", rate=0.0)
        with pytest.raises(ValueError):
            Resource(queue, "bad", rate=1.0, servers=0)
        resource = Resource(queue, "ok", rate=1.0)
        with pytest.raises(ValueError):
            resource.request(-1.0, lambda: None)


class TestTransferChain:
    def test_sequential_stages(self):
        queue = EventQueue()
        a = Resource(queue, "a", rate=10.0)
        b = Resource(queue, "b", rate=5.0)
        done = []
        TransferChain([(a, 10.0), (b, 10.0)]).start(
            lambda: done.append(queue.now))
        queue.run()
        assert done == [1.0 + 2.0]

    def test_pipelining_across_transfers(self):
        queue = EventQueue()
        a = Resource(queue, "a", rate=10.0)
        b = Resource(queue, "b", rate=10.0)
        done = []
        for _ in range(3):
            TransferChain([(a, 10.0), (b, 10.0)]).start(
                lambda: done.append(queue.now))
        queue.run()
        # Store-and-forward pipeline: last one at 4s, not 6s.
        assert done[-1] == pytest.approx(4.0)


class TestBarrier:
    def test_fires_after_all_arms(self):
        fired = []
        barrier = Barrier(3, lambda: fired.append(True))
        arms = [barrier.arm() for _ in range(3)]
        for arm in arms[:2]:
            arm()
        assert not fired
        arms[2]()
        assert fired == [True]

    def test_over_release_raises(self):
        barrier = Barrier(1, lambda: None)
        arm = barrier.arm()
        arm()
        with pytest.raises(RuntimeError):
            barrier.arm()()

    def test_validation(self):
        with pytest.raises(ValueError):
            Barrier(0, lambda: None)


class TestSolrEmulation:
    def test_plain_saturates_frontend_link(self):
        result = SolrEmulation(TestbedConfig(), SolrEmulationParams(
            n_clients=30, duration=5.0)).run()
        assert 0.9 < result.throughput_gbps < 1.3

    def test_netagg_exceeds_plain(self):
        plain = SolrEmulation(TestbedConfig(), SolrEmulationParams(
            n_clients=50, duration=5.0)).run()
        netagg = SolrEmulation(TestbedConfig(), SolrEmulationParams(
            n_clients=50, duration=5.0, use_netagg=True)).run()
        assert netagg.throughput_gbps > 5 * plain.throughput_gbps
        assert netagg.p99_latency < plain.p99_latency

    def test_throughput_grows_with_clients_before_saturation(self):
        small = SolrEmulation(TestbedConfig(), SolrEmulationParams(
            n_clients=5, duration=5.0, use_netagg=True)).run()
        large = SolrEmulation(TestbedConfig(), SolrEmulationParams(
            n_clients=20, duration=5.0, use_netagg=True)).run()
        assert large.throughput_gbps > 2 * small.throughput_gbps

    def test_alpha_one_converges_to_plain(self):
        plain = SolrEmulation(TestbedConfig(), SolrEmulationParams(
            n_clients=50, duration=5.0)).run()
        netagg = SolrEmulation(TestbedConfig(), SolrEmulationParams(
            n_clients=50, duration=5.0, use_netagg=True, alpha=1.0)).run()
        assert netagg.throughput_gbps == pytest.approx(
            plain.throughput_gbps, rel=0.15
        )

    def test_scale_out_doubles_cpu_bound_throughput(self):
        one = SolrEmulation(
            TestbedConfig(boxes_per_rack=1),
            SolrEmulationParams(n_clients=70, duration=5.0,
                                use_netagg=True, agg_cpu_factor=12.0),
        ).run()
        two = SolrEmulation(
            TestbedConfig(boxes_per_rack=2),
            SolrEmulationParams(n_clients=70, duration=5.0,
                                use_netagg=True, agg_cpu_factor=12.0),
        ).run()
        assert two.throughput_gbps == pytest.approx(
            2 * one.throughput_gbps, rel=0.2
        )

    def test_deterministic(self):
        params = SolrEmulationParams(n_clients=10, duration=3.0,
                                     use_netagg=True)
        a = SolrEmulation(TestbedConfig(), params).run()
        b = SolrEmulation(TestbedConfig(), params).run()
        assert a.requests_completed == b.requests_completed
        assert a.latencies == b.latencies

    def test_params_validation(self):
        with pytest.raises(ValueError):
            SolrEmulationParams(n_clients=0)
        with pytest.raises(ValueError):
            SolrEmulationParams(alpha=0.0)
        with pytest.raises(ValueError):
            SolrEmulationParams(duration=0.0)


class TestHadoopEmulation:
    def profile(self, alpha=0.1, cpu=1.0):
        return JobProfile("WC", output_ratio=alpha, cpu_factor=cpu,
                          aggregatable=True)

    def test_netagg_speeds_up_shuffle(self):
        emulation = HadoopEmulation(TestbedConfig())
        plain = emulation.run(self.profile(), 2 * GB, use_netagg=False)
        netagg = emulation.run(self.profile(), 2 * GB, use_netagg=True)
        speedup = (plain.shuffle_reduce_seconds
                   / netagg.shuffle_reduce_seconds)
        assert 2.0 < speedup < 10.0

    def test_speedup_grows_with_data(self):
        emulation = HadoopEmulation(TestbedConfig())

        def speedup(nbytes):
            plain = emulation.run(self.profile(), nbytes, use_netagg=False)
            netagg = emulation.run(self.profile(), nbytes, use_netagg=True)
            return (plain.shuffle_reduce_seconds
                    / netagg.shuffle_reduce_seconds)

        assert speedup(16 * GB) > speedup(2 * GB)

    def test_low_alpha_helps_more(self):
        emulation = HadoopEmulation(TestbedConfig())

        def relative(alpha):
            plain = emulation.run(self.profile(alpha), 2 * GB,
                                  use_netagg=False)
            netagg = emulation.run(self.profile(alpha), 2 * GB,
                                   use_netagg=True)
            return (netagg.shuffle_reduce_seconds
                    / plain.shuffle_reduce_seconds)

        assert relative(0.02) < relative(0.5)

    def test_non_aggregatable_rejected(self):
        emulation = HadoopEmulation(TestbedConfig())
        profile = JobProfile("TS", output_ratio=0.99, cpu_factor=1.0,
                             aggregatable=False)
        with pytest.raises(ValueError):
            emulation.run(profile, 1 * GB, use_netagg=True)

    def test_box_rate_positive_and_bounded(self):
        emulation = HadoopEmulation(TestbedConfig())
        netagg = emulation.run(self.profile(), 2 * GB, use_netagg=True)
        assert 0.0 < netagg.box_processing_gbps <= 10.5

    def test_measure_profile_from_real_run(self):
        text = generate_text(200, vocabulary=50, seed=3)
        splits = [text[i:i + 50] for i in range(0, 200, 50)]
        profile = measure_job_profile(wordcount_job(), splits,
                                      use_combiner=False)
        assert profile.name == "WC"
        assert 0.0 < profile.output_ratio < 0.3
        assert profile.aggregatable

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            JobProfile("x", output_ratio=0.0, cpu_factor=1.0,
                       aggregatable=True)
        with pytest.raises(ValueError):
            JobProfile("x", output_ratio=0.5, cpu_factor=0.0,
                       aggregatable=True)


class TestMultiReducer:
    def profile(self):
        return JobProfile("WC", output_ratio=0.1, cpu_factor=1.0,
                          aggregatable=True)

    def test_more_reducers_speed_up_plain_shuffle(self):
        emulation = HadoopEmulation(TestbedConfig())
        one = emulation.run(self.profile(), 4 * GB, n_reducers=1)
        four = emulation.run(self.profile(), 4 * GB, n_reducers=4)
        assert four.shuffle_reduce_seconds < one.shuffle_reduce_seconds

    def test_netagg_advantage_decays_with_reducers(self):
        emulation = HadoopEmulation(TestbedConfig())

        def speedup(n_reducers):
            plain = emulation.run(self.profile(), 4 * GB,
                                  n_reducers=n_reducers)
            netagg = emulation.run(self.profile(), 4 * GB,
                                   use_netagg=True, n_reducers=n_reducers)
            return (plain.shuffle_reduce_seconds
                    / netagg.shuffle_reduce_seconds)

        assert speedup(1) > speedup(8) > 1.0

    def test_reducer_count_validated(self):
        emulation = HadoopEmulation(TestbedConfig())
        with pytest.raises(ValueError):
            emulation.run(self.profile(), 1 * GB, n_reducers=0)
