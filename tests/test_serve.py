"""Tests for the live serving layer (``repro.serve``).

Covers the four contract areas of the serving API:

- endpoint round-trips (service dicts and the HTTP dispatch seam);
- admission mapping: ``AdmissionNack`` -> 429 with a retry hint,
  per-tenant isolation intact;
- deterministic loadgen replay: identical (params, seed) -> identical
  per-tenant report, and the report's accounting self-checks hold;
- chaos: box failures mid-stream yield well-formed errors (503 when
  the breakers fail fast) and a post-recovery retry returns the exact
  centralised aggregate.
"""

import asyncio
import json

import pytest

from repro.serve import (
    AggregationService,
    HttpFrontend,
    ServeConfig,
    TenantPolicy,
    run_loadgen,
)
from repro.workload.openloop import (
    OP_MLGRAD,
    OP_QUERY,
    OpenLoopParams,
    ZipfTenants,
    generate_arrivals,
)


def _query(tenant="t1", rid="r1", seed=42, **extra):
    return {"op": OP_QUERY, "tenant": tenant, "id": rid,
            "payload_seed": seed, **extra}


def _mlgrad(tenant="t1", rid="g1", seed=7, **extra):
    return {"op": OP_MLGRAD, "tenant": tenant, "id": rid,
            "payload_seed": seed, **extra}


class TestServiceRoundTrips:
    def test_query_exact_aggregate(self):
        service = AggregationService()
        request = _query()
        response = service.handle(request)
        assert response["status"] == 200
        assert response["value"] == service.expected_value(request)
        assert response["latency"] > 0
        assert response["boxes"] >= 1

    def test_mlgrad_matches_centralised_sum(self):
        service = AggregationService()
        request = _mlgrad()
        response = service.handle(request)
        assert response["status"] == 200
        expected = service.expected_value(request)
        assert len(response["value"]) == len(expected)
        # Tree-shaped merges reassociate float adds; agreement is to
        # rounding error, exactly as repro.apps.mlgrad documents.
        assert all(abs(a - b) < 1e-9
                   for a, b in zip(response["value"], expected))

    def test_explicit_payloads(self):
        service = AggregationService()
        response = service.handle(_query(
            results=[[[1, 0.9], [2, 0.5]], [[3, 0.7]], [[4, 0.99]]]))
        assert response["status"] == 200
        assert response["value"][0] == [4, 0.99]

    def test_unknown_op_404(self):
        service = AggregationService()
        response = service.handle({"op": "nonsense", "tenant": "t1",
                                   "id": "x"})
        assert response["status"] == 404
        assert response["error"] == "unknown-op"
        assert response["id"] == "x" and response["tenant"] == "t1"

    def test_malformed_payload_400(self):
        service = AggregationService()
        response = service.handle(_query(results=[]))
        assert response["status"] == 400
        assert response["error"] == "bad-request"

    def test_report_ledger_tracks_statuses(self):
        service = AggregationService()
        service.handle(_query(rid="a"))
        service.handle({"op": "nope", "tenant": "t1", "id": "b"})
        stats = service.report.tenants["t1"]
        assert stats.requests == 2
        assert stats.ok == 1 and stats.errors == 1
        assert not service.report.accounting_errors()


class TestAdmissionMapping:
    def _strict_service(self):
        # tenant-hot gets one token and (practically) no refill, so its
        # second request inside the same instant must NACK.
        return AggregationService(ServeConfig(
            tenants={"hot": TenantPolicy(rate=0.001, burst=1.0)},
            default_policy=TenantPolicy(rate=1000.0, burst=1000.0),
        ))

    def test_nack_maps_to_429_with_retry_hint(self):
        service = self._strict_service()
        assert service.handle(_query(tenant="hot", rid="a"))["status"] == 200
        rejected = service.handle(_query(tenant="hot", rid="b"))
        assert rejected["status"] == 429
        assert rejected["error"] == "admission-nack"
        assert rejected["reason"] == "rate-limit"
        assert rejected["retry_after"] == pytest.approx(1.0 / 0.001)

    def test_per_tenant_isolation(self):
        service = self._strict_service()
        service.handle(_query(tenant="hot", rid="a"))
        assert service.handle(_query(tenant="hot", rid="b"))["status"] == 429
        # The cold tenant's bucket is untouched by hot's exhaustion.
        assert service.handle(_query(tenant="cold", rid="c"))["status"] == 200
        assert service.report.tenants["hot"].rejected_admission == 1
        assert service.report.tenants["cold"].rejected_admission == 0

    def test_admission_off_never_429s(self):
        service = AggregationService(ServeConfig(
            tenants={"hot": TenantPolicy(rate=0.001, burst=1.0)},
            admission=False))
        for i in range(5):
            assert service.handle(
                _query(tenant="hot", rid=f"r{i}"))["status"] == 200


class TestHttpEndpoints:
    def _dispatch(self, frontend, method, path, body=b""):
        return asyncio.run(frontend.dispatch(method, path, body))

    def test_query_endpoint_round_trip(self):
        frontend = HttpFrontend(AggregationService())
        status, payload = self._dispatch(
            frontend, "POST", "/v1/query",
            json.dumps({"tenant": "t1", "id": "r1",
                        "payload_seed": 42}).encode())
        assert status == 200
        assert payload["status"] == 200
        assert payload["value"]

    def test_mlgrad_endpoint_round_trip(self):
        service = AggregationService()
        frontend = HttpFrontend(service)
        status, payload = self._dispatch(
            frontend, "POST", "/v1/mlgrad",
            json.dumps({"tenant": "t1", "id": "g1",
                        "payload_seed": 7}).encode())
        assert status == 200
        expected = service.expected_value(_mlgrad())
        assert payload["value"] == pytest.approx(expected, abs=1e-9)

    def test_healthz_and_stats(self):
        frontend = HttpFrontend(AggregationService())
        status, payload = self._dispatch(frontend, "GET", "/healthz")
        assert status == 200 and payload["ok"]
        self._dispatch(frontend, "POST", "/v1/query",
                       json.dumps({"tenant": "t1", "id": "r1",
                                   "payload_seed": 1}).encode())
        status, payload = self._dispatch(frontend, "GET", "/v1/stats")
        assert status == 200
        assert payload["requests"] == 1
        assert payload["tenants"]["t1"]["ok"] == 1

    def test_http_status_mirrors_admission_nack(self):
        service = AggregationService(ServeConfig(
            tenants={"hot": TenantPolicy(rate=0.001, burst=1.0)}))
        frontend = HttpFrontend(service)
        body = json.dumps({"tenant": "hot", "payload_seed": 1}).encode()
        first, _ = self._dispatch(frontend, "POST", "/v1/query", body)
        second, payload = self._dispatch(frontend, "POST", "/v1/query", body)
        assert first == 200
        assert second == 429
        assert payload["error"] == "admission-nack"

    def test_routing_errors_are_well_formed(self):
        frontend = HttpFrontend(AggregationService())
        status, payload = self._dispatch(frontend, "GET", "/v1/nowhere")
        assert status == 404 and payload["error"] == "not-found"
        status, payload = self._dispatch(frontend, "GET", "/v1/query")
        assert status == 405 and payload["error"] == "method-not-allowed"
        status, payload = self._dispatch(frontend, "POST", "/v1/query",
                                         b"{not json")
        assert status == 400 and payload["error"] == "bad-json"

    def test_live_socket_round_trip(self):
        # One real TCP request through asyncio.start_server.
        async def scenario():
            frontend = HttpFrontend(AggregationService())
            host, port = await frontend.start()
            reader, writer = await asyncio.open_connection(host, port)
            body = json.dumps({"tenant": "t1", "id": "r1",
                               "payload_seed": 42}).encode()
            writer.write(
                b"POST /v1/query HTTP/1.1\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"\r\n" + body)
            await writer.drain()
            status_line = await reader.readline()
            while (await reader.readline()) not in (b"\r\n", b""):
                pass
            payload = json.loads(await reader.read(65536))
            writer.close()
            await frontend.stop()
            return status_line, payload

        status_line, payload = asyncio.run(scenario())
        assert b"200" in status_line
        assert payload["status"] == 200


class TestLoadgenDeterminism:
    PARAMS = OpenLoopParams(users=5_000, duration=2.0, tenants=4)

    def test_same_seed_identical_report(self):
        a = run_loadgen(self.PARAMS, seed=11)
        b = run_loadgen(self.PARAMS, seed=11)
        assert a.result.rows == b.result.rows
        assert a.aggregate_goodput == b.aggregate_goodput

    def test_different_seed_different_stream(self):
        a = run_loadgen(self.PARAMS, seed=11)
        b = run_loadgen(self.PARAMS, seed=12)
        assert a.result.rows != b.result.rows

    def test_accounting_self_checks_pass(self):
        outcome = run_loadgen(self.PARAMS, seed=3)
        assert outcome.report.accounting_errors() == []
        assert outcome.report.total_requests() > 0

    def test_arrival_stream_is_deterministic(self):
        params = OpenLoopParams(users=20_000, duration=1.0, tenants=8)
        a = generate_arrivals(params, seed=5)
        b = generate_arrivals(params, seed=5)
        assert a == b
        assert all(x.at <= y.at for x, y in zip(a, a[1:]))
        assert all(arrival.at < params.duration for arrival in a)

    def test_zipf_rank_one_is_hottest(self):
        import random

        zipf = ZipfTenants(8, 1.2)
        rng = random.Random(9)
        draws = [zipf.draw(rng) for _ in range(4000)]
        counts = {t: draws.count(t) for t in set(draws)}
        assert max(counts, key=counts.get) == "tenant-1"
        assert zipf.share("tenant-1") > zipf.share("tenant-8")


class TestChaos:
    def _boxes(self, service):
        return sorted(info.box_id
                      for info in service.platform.topology.all_boxes())

    def test_failure_mid_stream_stays_well_formed_and_exact(self):
        service = AggregationService()
        request = _query(seed=99)
        expected = service.expected_value(request)
        assert service.handle(dict(request, id="before"))["value"] \
            == expected
        for box in self._boxes(service):
            service.platform.fail_box(box)
        # Mid-stream failure: the shim ladder degrades (spill to parent,
        # ultimately direct to the master) but never silently corrupts:
        # any 200 carries the exact aggregate; any non-200 is a
        # well-formed JSON error body.
        response = service.handle(dict(request, id="during"))
        assert response["tenant"] == "t1" and response["id"] == "during"
        if response["status"] == 200:
            assert response["value"] == expected
        else:
            assert response["status"] in (500, 503)
            assert response["error"] and response["reason"]

    def test_breakers_fail_fast_503_then_recover_exact(self):
        service = AggregationService()
        request = _query(seed=123)
        expected = service.expected_value(request)
        boxes = self._boxes(service)
        for box in boxes:
            service.platform.fail_box(box)
        # Trip every breaker (the deterministic stand-in for the probe
        # storm a real outage produces) and the service fails fast.
        board = service.platform.breakers
        now = service.clock
        for box in boxes:
            breaker = board.breaker(box)
            for _ in range(3):
                breaker.record_failure(now)
        rejected = service.handle(dict(request, id="while-down"))
        assert rejected["status"] == 503
        assert rejected["error"] == "breaker-open"
        assert rejected["reason"]
        assert service.report.tenants["t1"].rejected_unavailable == 1
        # Recovery: boxes come back, the breaker reset timeout elapses
        # (allow() performs open -> half-open), and the retried request
        # returns the exact centralised aggregate.
        for box in boxes:
            service.platform.recover_box(box)
        service.platform.advance_clock(service.clock + 1.0)
        retried = service.handle(dict(request, id="retry"))
        assert retried["status"] == 200
        assert retried["value"] == expected

    def test_scheduled_fault_replay_is_deterministic(self):
        from repro.faults import FaultEvent, FaultSchedule

        def run_once():
            boxes = self._boxes(AggregationService())
            schedule = FaultSchedule([
                FaultEvent(0.01, "box-crash", boxes[0]),
                FaultEvent(0.30, "box-recover", boxes[0]),
            ])
            service = AggregationService(ServeConfig(faults=schedule))
            return [service.handle(_query(rid=f"r{i}", seed=i))["status"]
                    for i in range(10)]

        assert run_once() == run_once()


class TestAnalyzeIntegration:
    def test_diagnosis_gains_a_serve_section(self):
        from repro.obs import Tracer, tracing
        from repro.obs.analyze import diagnose_tracer

        tracer = Tracer()
        with tracing(tracer):
            service = AggregationService()
            service.handle(_query(tenant="a", rid="r1", seed=1))
            service.handle(_query(tenant="b", rid="r2", seed=2))
            service.handle({"op": "nope", "tenant": "a", "id": "r3"})
        diagnosis = diagnose_tracer(tracer)
        serve = diagnosis["serve"]
        assert serve["requests"] == 3
        assert serve["tenants"]["a"]["ok"] == 1
        assert serve["tenants"]["a"]["statuses"] == {"200": 1, "404": 1}
        assert serve["tenants"]["b"]["p99_latency"] > 0
        assert serve["tenants"]["b"]["mean_service"] > 0

    def test_untraced_runs_have_no_serve_section(self):
        from repro.obs import Tracer
        from repro.obs.analyze import diagnose_tracer

        assert "serve" not in diagnose_tracer(Tracer())


class TestFigServe:
    def test_admission_wins_at_overload(self):
        from repro.experiments import QUICK, load

        result = load("fig_serve").run(
            scale=QUICK, loads=(2.0,), duration=1.0)
        (row,) = result.rows
        # The tentpole claim: per-tenant admission preserves aggregate
        # goodput at 2x overload versus the ungated arm.
        assert row["adm_goodput"] > row["noadm_goodput"]
        assert row["adm_cold_attain"] >= row["noadm_cold_attain"]
        assert row["adm_r429"] > 0

    def test_quick_deterministic(self):
        from repro.experiments import QUICK, load

        exp = load("fig_serve")
        a = exp.run(scale=QUICK, seed=4, loads=(1.0,), duration=1.0)
        b = exp.run(scale=QUICK, seed=4, loads=(1.0,), duration=1.0)
        assert a.rows == b.rows
