"""Tests for the mini map/reduce framework and its benchmarks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.hadoop import (
    MapReduceEngine,
    adpredictor_job,
    generate_adpredictor_logs,
    generate_graph,
    generate_terasort_records,
    generate_text,
    pagerank_job,
    terasort_job,
    uservisits_job,
    wordcount_job,
)
from repro.apps.hadoop.benchmarks import pack_clicks, unpack_clicks
from repro.apps.hadoop.job import Counters


def chop(data, n=4):
    size = max(1, len(data) // n)
    chunks = [data[i:i + size] for i in range(0, len(data), size)]
    return chunks


class TestEngineBasics:
    def test_wordcount_counts_correctly(self):
        engine = MapReduceEngine()
        splits = [["a b a"], ["b c"]]
        result, _ = engine.run(wordcount_job(), splits)
        assert result == {"a": 2, "b": 2, "c": 1}

    def test_combiner_does_not_change_result(self):
        engine = MapReduceEngine()
        text = generate_text(100, seed=3)
        with_combiner, _ = engine.run(wordcount_job(), chop(text))
        without, _ = engine.run(wordcount_job(), chop(text),
                                use_combiner=False)
        assert with_combiner == without

    def test_on_path_levels_do_not_change_result(self):
        engine = MapReduceEngine()
        text = generate_text(100, seed=3)
        plain, _ = engine.run(wordcount_job(), chop(text, 8))
        for levels in (1, 2, 3):
            on_path, _ = engine.run(wordcount_job(), chop(text, 8),
                                    on_path_levels=levels)
            assert on_path == plain

    def test_on_path_reduces_shuffle_bytes(self):
        engine = MapReduceEngine()
        text = generate_text(200, vocabulary=50, seed=3)
        _, plain = engine.run(wordcount_job(), chop(text, 8),
                              use_combiner=False)
        _, on_path = engine.run(wordcount_job(), chop(text, 8),
                                on_path_levels=3, use_combiner=False)
        assert on_path.shuffle_bytes < plain.shuffle_bytes

    def test_level_bytes_monotonically_decrease(self):
        engine = MapReduceEngine()
        text = generate_text(200, vocabulary=50, seed=3)
        _, stats = engine.run(wordcount_job(), chop(text, 8),
                              on_path_levels=3)
        for before, after in zip(stats.level_bytes, stats.level_bytes[1:]):
            assert after <= before

    def test_multiple_reducers_same_result(self):
        text = generate_text(100, seed=3)
        single, _ = MapReduceEngine(n_reducers=1).run(
            wordcount_job(), chop(text))
        multi, _ = MapReduceEngine(n_reducers=4).run(
            wordcount_job(), chop(text))
        assert single == multi

    def test_on_path_without_combiner_rejected(self):
        engine = MapReduceEngine()
        with pytest.raises(ValueError):
            engine.run(terasort_job(), [["a"]], on_path_levels=1)

    def test_counters_filled(self):
        engine = MapReduceEngine()
        counters = Counters()
        engine.run(wordcount_job(), [["a b"], ["a"]], counters=counters)
        assert counters.map_input_records == 2
        assert counters.map_output_records == 3
        assert counters.reduce_output_records == 2
        assert counters.map_output_bytes > 0

    def test_invalid_reducer_count(self):
        with pytest.raises(ValueError):
            MapReduceEngine(n_reducers=0)


class TestOutputRatios:
    """Measured ratios must match the paper's per-job character."""

    def test_wordcount_small_vocab_reduces_heavily(self):
        text = generate_text(400, vocabulary=50, seed=3)
        _, stats = MapReduceEngine().run(wordcount_job(), chop(text),
                                         use_combiner=False)
        assert stats.output_ratio < 0.15

    def test_wordcount_large_vocab_reduces_little(self):
        text = generate_text(200, vocabulary=50_000, seed=3)
        _, stats = MapReduceEngine().run(wordcount_job(), chop(text),
                                         use_combiner=False)
        # Zipf skew still repeats head words, but a 50k vocabulary leaves
        # most of the intermediate data unique.
        assert stats.output_ratio > 0.35

    def test_vocabulary_knob_is_monotone(self):
        ratios = []
        for vocab in (20, 200, 2000):
            text = generate_text(300, vocabulary=vocab, seed=3)
            _, stats = MapReduceEngine().run(wordcount_job(), chop(text),
                                             use_combiner=False)
            ratios.append(stats.output_ratio)
        assert ratios == sorted(ratios)

    def test_terasort_ratio_near_one(self):
        records = generate_terasort_records(500, seed=3)
        _, stats = MapReduceEngine().run(terasort_job(), chop(records),
                                         use_combiner=False)
        assert stats.output_ratio > 0.9

    def test_adpredictor_reduces_heavily(self):
        logs = generate_adpredictor_logs(2000, seed=3)
        _, stats = MapReduceEngine().run(adpredictor_job(), chop(logs),
                                         use_combiner=False)
        assert stats.output_ratio < 0.05


class TestBenchmarkJobs:
    def test_adpredictor_counts(self):
        logs = [
            (("f1", "f2", "f3"), True),
            (("f1", "f2", "f3"), False),
        ]
        result, _ = MapReduceEngine().run(adpredictor_job(), [logs])
        clicks, impressions = unpack_clicks(result["f1"])
        assert (clicks, impressions) == (1, 2)

    def test_pack_unpack_roundtrip(self):
        packed = pack_clicks(123, 456)
        assert unpack_clicks(packed) == (123, 456)

    def test_pack_validation(self):
        with pytest.raises(ValueError):
            pack_clicks(-1, 0)

    @given(st.integers(0, 2**30), st.integers(0, 2**30))
    @settings(max_examples=50)
    def test_pack_is_summable(self, a, b):
        # Summing packed pairs must equal packing the summed pair, the
        # property that makes AP's statistic combinable on-path.
        assert pack_clicks(a, b) + pack_clicks(b, a) == \
            pack_clicks(a + b, a + b)

    def test_pagerank_conserves_rank_mass(self):
        graph = generate_graph(50, seed=3)
        job = pagerank_job()
        result, _ = MapReduceEngine().run(job, chop(graph))
        # Every node with in-links gets (1-d) + d * contributions.
        assert all(v >= int(0.15 * 1_000_000) for v in result.values())

    def test_pagerank_iteration_changes_ranks(self):
        graph = generate_graph(50, seed=3)
        first, _ = MapReduceEngine().run(pagerank_job(), chop(graph))
        ranks = {int(k[1:]): v / 1_000_000 for k, v in first.items()}
        second, _ = MapReduceEngine().run(pagerank_job(ranks=ranks),
                                          chop(graph))
        assert first != second

    def test_uservisits_sums_revenue(self):
        visits = [("10.1.2.3", 1.50), ("10.1.9.9", 2.25), ("99.9.0.1", 1.0)]
        result, _ = MapReduceEngine().run(uservisits_job(), [visits])
        assert result["10.1"] == 375  # cents

    def test_terasort_keys_preserved(self):
        records = generate_terasort_records(100, seed=3)
        result, _ = MapReduceEngine().run(terasort_job(), chop(records))
        assert sum(result.values()) == 100

    def test_terasort_not_aggregatable(self):
        assert not terasort_job().aggregatable
        assert wordcount_job().aggregatable


class TestDataGenerators:
    def test_deterministic(self):
        assert generate_text(10, seed=5) == generate_text(10, seed=5)
        assert generate_graph(10, seed=5) == generate_graph(10, seed=5)

    def test_graph_no_self_loops(self):
        for node, targets in generate_graph(50, seed=3):
            assert node not in targets

    def test_adpredictor_ctr_respected(self):
        logs = generate_adpredictor_logs(5000, ctr=0.2, seed=3)
        clicked = sum(1 for _, c in logs if c)
        assert clicked / len(logs) == pytest.approx(0.2, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_text(0)
        with pytest.raises(ValueError):
            generate_graph(1)
        with pytest.raises(ValueError):
            generate_adpredictor_logs(10, ctr=1.5)
