"""Tests for the future-work extensions: on-path multicast and
faulty-function isolation."""

import pytest

from repro.aggbox.functions import SumFunction, TopKFunction
from repro.aggbox.isolation import (
    AggregationFault,
    AppQuarantined,
    GuardedFunction,
    IsolationMonitor,
    IsolationPolicy,
)
from repro.aggregation import deploy_boxes
from repro.core.multicast import (
    build_multicast_tree,
    multicast_link_copies,
    plan_multicast_flows,
    plan_unicast_flows,
)
from repro.netsim import FlowSim
from repro.topology import ThreeTierParams, three_tier
from repro.units import MB

SMALL = ThreeTierParams(
    n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2, hosts_per_tor=4
)
RECEIVERS = ["host:1", "host:4", "host:5", "host:8", "host:12", "host:13"]


def make_topo(with_boxes=True):
    topo = three_tier(SMALL)
    if with_boxes:
        deploy_boxes(topo)
    return topo


class TestMulticastTree:
    def test_every_receiver_served(self):
        topo = make_topo()
        mc = build_multicast_tree(topo, "bc", "host:0", RECEIVERS)
        specs = plan_multicast_flows(topo, mc, payload_bytes=MB)
        served = {s.flow_id.split(":")[2] for s in specs
                  if ":recv:" in s.flow_id}
        assert served == {str(i) for i in range(len(RECEIVERS))}
        # Each receiver gets the full payload across its chunk flows.
        for i, receiver in enumerate(RECEIVERS):
            total = sum(s.size for s in specs
                        if s.flow_id.startswith(f"mc:recv:{i}:"))
            assert total == pytest.approx(MB)

    def test_simulation_completes(self):
        topo = make_topo()
        mc = build_multicast_tree(topo, "bc", "host:0", RECEIVERS)
        specs = plan_multicast_flows(topo, mc, payload_bytes=MB)
        sim = FlowSim(topo.network)
        sim.add_flows(specs)
        result = sim.run()
        assert len(result.records) == len(specs)

    def test_multicast_saves_source_link_copies(self):
        """The headline: the source edge link carries one copy, not N."""
        topo = make_topo()
        mc = build_multicast_tree(topo, "bc", "host:0", RECEIVERS)
        mc_specs = plan_multicast_flows(topo, mc, payload_bytes=MB)
        uc_specs = plan_unicast_flows(topo, "host:0", RECEIVERS,
                                      payload_bytes=MB)
        mc_copies = multicast_link_copies(mc_specs, MB)
        uc_copies = multicast_link_copies(uc_specs, MB)
        source_link = "host:0->tor:0"
        assert uc_copies[source_link] == pytest.approx(len(RECEIVERS))
        assert mc_copies[source_link] == pytest.approx(1.0)

    def test_multicast_shared_link_copies_fewer(self):
        """On *shared* (host + inter-switch) links, multicast carries
        strictly fewer payload copies; box attachment links are
        dedicated and excluded."""
        topo = make_topo()
        mc = build_multicast_tree(topo, "bc", "host:0", RECEIVERS)
        mc_total = sum(multicast_link_copies(
            plan_multicast_flows(topo, mc, payload_bytes=MB), MB,
            shared_only=True).values())
        uc_total = sum(multicast_link_copies(
            plan_unicast_flows(topo, "host:0", RECEIVERS,
                               payload_bytes=MB), MB,
            shared_only=True).values())
        assert mc_total < uc_total

    def test_multicast_faster_under_contention(self):
        topo_mc = make_topo()
        mc = build_multicast_tree(topo_mc, "bc", "host:0", RECEIVERS)
        sim = FlowSim(topo_mc.network)
        sim.add_flows(plan_multicast_flows(topo_mc, mc,
                                           payload_bytes=20 * MB))
        mc_done = sim.run().end_time

        topo_uc = make_topo()
        sim = FlowSim(topo_uc.network)
        sim.add_flows(plan_unicast_flows(topo_uc, "host:0", RECEIVERS,
                                         payload_bytes=20 * MB))
        uc_done = sim.run().end_time
        assert mc_done < uc_done

    def test_no_boxes_degenerates_to_unicast(self):
        topo = make_topo(with_boxes=False)
        mc = build_multicast_tree(topo, "bc", "host:0", RECEIVERS)
        specs = plan_multicast_flows(topo, mc, payload_bytes=MB)
        assert all(":recv:" in s.flow_id for s in specs)
        copies = multicast_link_copies(specs, MB)
        assert copies["host:0->tor:0"] == pytest.approx(len(RECEIVERS))

    def test_payload_validation(self):
        topo = make_topo()
        mc = build_multicast_tree(topo, "bc", "host:0", RECEIVERS)
        with pytest.raises(ValueError):
            plan_multicast_flows(topo, mc, payload_bytes=0.0)


class TestIsolationPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            IsolationPolicy(max_merge_items=0)
        with pytest.raises(ValueError):
            IsolationPolicy(max_output_amplification=0.0)
        with pytest.raises(ValueError):
            IsolationPolicy(max_faults=0)


class _ExplodingFunction(SumFunction):
    def merge(self, items):
        raise ZeroDivisionError("boom")


class _AmplifyingFunction(TopKFunction):
    def merge(self, items):
        return [r for part in items for r in part] * 10


class TestGuardedFunction:
    def test_passes_through_good_function(self):
        guard = GuardedFunction(SumFunction())
        assert guard.merge([1.0, 2.0]) == 3.0

    def test_exception_becomes_fault(self):
        monitor = IsolationMonitor()
        guard = monitor.guard("bad", _ExplodingFunction())
        with pytest.raises(AggregationFault):
            guard.merge([1.0])
        assert monitor.fault_count("bad") == 1

    def test_merge_budget_enforced(self):
        policy = IsolationPolicy(max_merge_items=3)
        guard = GuardedFunction(TopKFunction(k=2), policy=policy)
        from repro.wire.records import SearchResult

        big = [[SearchResult(i, 1.0) for i in range(4)]]
        with pytest.raises(AggregationFault):
            guard.merge(big)

    def test_amplification_blocked(self):
        from repro.wire.records import SearchResult

        monitor = IsolationMonitor()
        guard = monitor.guard("amp", _AmplifyingFunction(k=100))
        items = [[SearchResult(i, 1.0) for i in range(5)]]
        with pytest.raises(AggregationFault):
            guard.merge(items)
        assert monitor.faults["amp"][0].kind == "amplification"

    def test_quarantine_after_repeat_faults(self):
        monitor = IsolationMonitor(policy=IsolationPolicy(max_faults=2))
        guard = monitor.guard("bad", _ExplodingFunction())
        for _ in range(2):
            with pytest.raises(AggregationFault):
                guard.merge([1.0])
        assert monitor.quarantined("bad")
        with pytest.raises(AppQuarantined):
            guard.merge([1.0])

    def test_output_bytes_capped(self):
        guard = GuardedFunction(
            TopKFunction(k=10),
            policy=IsolationPolicy(max_output_amplification=1.0),
        )
        assert guard.output_bytes([100.0]) <= 100.0

    def test_well_behaved_app_never_quarantined(self):
        monitor = IsolationMonitor(policy=IsolationPolicy(max_faults=1))
        guard = monitor.guard("good", SumFunction())
        for _ in range(100):
            guard.merge([1.0, 2.0])
        assert not monitor.quarantined("good")
