"""Tests for the mini distributed search engine."""

import pytest

from repro.aggbox.functions import TopKFunction
from repro.apps.solr import (
    InvertedIndex,
    SearchBackend,
    SearchFrontend,
    generate_corpus,
    make_categorise_wrapper,
    make_sample_wrapper,
    make_topk_wrapper,
    shard_corpus,
)
from repro.apps.solr.corpus import BASE_CATEGORIES, Document, random_queries
from repro.apps.solr.index import tokenize


def corpus(n=120, seed=2):
    return generate_corpus(n, seed=seed)


class TestCorpus:
    def test_deterministic(self):
        assert generate_corpus(20, seed=1) == generate_corpus(20, seed=1)

    def test_categories_assigned_round_robin(self):
        docs = corpus(10)
        assert docs[0].category == BASE_CATEGORIES[0]
        assert docs[5].category == BASE_CATEGORIES[0]

    def test_category_markers_present(self):
        for doc in corpus(20):
            assert doc.category in doc.body

    def test_sharding_partitions_all_docs(self):
        docs = corpus(50)
        shards = shard_corpus(docs, 4)
        assert sum(len(s) for s in shards) == 50
        ids = {d.doc_id for s in shards for d in s}
        assert ids == {d.doc_id for d in docs}

    def test_shard_validation(self):
        with pytest.raises(ValueError):
            shard_corpus(corpus(10), 0)

    def test_queries_drawn_from_corpus(self):
        docs = corpus(30)
        queries = random_queries(docs, 5)
        assert len(queries) == 5
        assert all(len(q.split()) == 3 for q in queries)


class TestInvertedIndex:
    def test_tokenize(self):
        assert tokenize("Hello, World! x2") == ["hello", "world", "x2"]

    def test_search_finds_matching_doc(self):
        index = InvertedIndex()
        index.add(Document(1, "t", "apple banana", "science"))
        index.add(Document(2, "t", "cherry durian", "science"))
        results = index.search("apple")
        assert [doc_id for doc_id, _ in results] == [1]

    def test_duplicate_doc_rejected(self):
        index = InvertedIndex()
        doc = Document(1, "t", "a", "science")
        index.add(doc)
        with pytest.raises(ValueError):
            index.add(doc)

    def test_tf_increases_score(self):
        index = InvertedIndex()
        index.add(Document(1, "t", "apple apple apple pear pear pear",
                           "science"))
        index.add(Document(2, "t", "apple pear pear pear pear pear",
                           "science"))
        results = dict(index.search("apple"))
        assert results[1] > results[2]

    def test_k_limits_results(self):
        index = InvertedIndex()
        for i in range(10):
            index.add(Document(i, "t", "common words here", "science"))
        assert len(index.search("common", k=3)) == 3

    def test_no_match_empty(self):
        index = InvertedIndex()
        index.add(Document(1, "t", "apple", "science"))
        assert index.search("zebra") == []

    def test_df(self):
        index = InvertedIndex()
        index.add(Document(1, "t", "apple", "science"))
        index.add(Document(2, "t", "apple pear", "science"))
        assert index.df("apple") == 2
        assert index.df("pear") == 1
        assert index.df("zebra") == 0


class TestDistributedSearch:
    def test_sharded_equals_centralised(self):
        docs = corpus(150)
        backends = [SearchBackend(f"b{i}", s)
                    for i, s in enumerate(shard_corpus(docs, 5))]
        frontend = SearchFrontend(backends, k=7)
        central = SearchBackend("all", docs)
        for query in random_queries(docs, 10, seed=4):
            distributed = frontend.search(query)
            centralised = central.query(query, k=7)
            assert [(r.doc_id, pytest.approx(r.score))
                    for r in distributed] == \
                [(r.doc_id, r.score) for r in centralised]

    def test_merge_absorbs_empty_responses(self):
        docs = corpus(60)
        backends = [SearchBackend(f"b{i}", s)
                    for i, s in enumerate(shard_corpus(docs, 3))]
        frontend = SearchFrontend(backends, k=5)
        partials = frontend.scatter("science history")
        merged_all = frontend.merge_responses(partials)
        # NetAgg-style: everything in slot 0, None elsewhere.
        pre_merged = TopKFunction(k=5).merge(partials)
        assert frontend.merge_responses([pre_merged, None, None]) == \
            merged_all

    def test_search_via_external_aggregation(self):
        docs = corpus(60)
        backends = [SearchBackend(f"b{i}", s)
                    for i, s in enumerate(shard_corpus(docs, 3))]
        frontend = SearchFrontend(backends, k=5)

        def fake_netagg(query, partials):
            merged = TopKFunction(k=5).merge(partials)
            return [merged] + [None] * (len(partials) - 1)

        via = frontend.search_via("science history", fake_netagg)
        plain = frontend.search("science history")
        assert via == plain

    def test_search_via_validates_slot_count(self):
        docs = corpus(30)
        backends = [SearchBackend(f"b{i}", s)
                    for i, s in enumerate(shard_corpus(docs, 3))]
        frontend = SearchFrontend(backends)
        with pytest.raises(ValueError):
            frontend.search_via("q", lambda q, p: [None])

    def test_frontend_requires_backends(self):
        with pytest.raises(ValueError):
            SearchFrontend([])

    def test_queries_served_counted(self):
        docs = corpus(30)
        backend = SearchBackend("b0", docs)
        frontend = SearchFrontend([backend])
        frontend.search("anything")
        assert frontend.queries_served == 1
        assert backend.queries_served >= 1


class TestWrappers:
    def test_topk_wrapper_roundtrip(self):
        fn, serialise, deserialise = make_topk_wrapper(k=2)
        docs = corpus(30)
        backend = SearchBackend("b0", docs)
        results = backend.query("science", k=4)
        assert deserialise(serialise(results)) == results
        assert len(fn.merge([results])) <= 2

    def test_sample_wrapper(self):
        fn, serialise, deserialise = make_sample_wrapper(alpha=0.5)
        assert fn.alpha == 0.5

    def test_categorise_wrapper_roundtrip(self):
        fn, serialise, deserialise = make_categorise_wrapper(k=2)
        items = [("science text science", 1.5, "")]
        merged = fn.merge([items])
        assert deserialise(serialise(merged)) == merged
        assert merged[0][2] == "science"

    def test_categorise_classifies_corpus_correctly(self):
        fn, _, _ = make_categorise_wrapper()
        docs = corpus(25)
        hits = 0
        for doc in docs:
            if fn.classify(doc.text) == doc.category:
                hits += 1
        assert hits / len(docs) > 0.8
