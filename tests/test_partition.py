"""Tests for the partition-tolerance plane (PR 8).

Covers the pieces end-to-end, each label checked against ground truth:

- schedule coherence: ``FaultSchedule.validate`` rejects incoherent
  timelines and names the offending events;
- fault domains: rack/pod derivation, scope membership, and the
  expansion of ``domain-fail``/``net-partition`` markers into
  correlated member events;
- gray detection: the seeded-EWMA latency-outlier detector flags
  without poisoning its baseline, and the platform hedges deliveries
  into gray boxes against the deadline;
- partial delivery: the platform completes around unreachable
  subtrees, the completeness record matches the centralised ground
  truth exactly, the fail-stop baseline raises instead;
- serving: 206 bodies with completeness, the ``min_completeness``
  floor, 503 partition mapping, and frame-level HTTP robustness
  (garbled request line -> 400, oversized body -> 413 -- well-formed
  JSON, never a dropped connection).
"""

import asyncio
import json

import pytest

from repro.aggbox.functions import SumFunction
from repro.aggbox.overload import GRAY
from repro.aggregation import deploy_boxes
from repro.core import NetAggPlatform
from repro.core.partition import (
    Completeness,
    GrayDetector,
    GrayPolicy,
    PartitionPolicy,
    SubtreeUnreachable,
)
from repro.faults import (
    BOX_CRASH,
    BOX_GRAY,
    BOX_RECOVER,
    DOMAIN_FAIL,
    LINK_DOWN,
    LINK_UP,
    NET_PARTITION,
    FaultEvent,
    FaultSchedule,
    PlatformFaultInjector,
    in_scope,
    pod_domain_name,
    rack_domain_name,
    topology_domains,
)
from repro.serve import (
    AggregationService,
    HttpFrontend,
    ServeConfig,
    TenantPolicy,
)
from repro.topology import ThreeTierParams, three_tier
from repro.topology.base import TOR
from repro.wire.serializer import read_float, write_float
from repro.workload.openloop import OP_MLGRAD, pick_endpoints

SMALL = ThreeTierParams(
    n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2, hosts_per_tor=2
)


def small_topo():
    topo = three_tier(SMALL)
    deploy_boxes(topo)
    return topo


def sum_platform(topo, schedule, policy):
    platform = NetAggPlatform(
        topo, faults=PlatformFaultInjector(schedule, topo=topo),
        partition=policy)
    platform.register_app("sum", SumFunction(), write_float,
                          lambda b: read_float(b)[0])
    return platform


def pod_partition(duration=0.0, pod=1):
    return FaultSchedule([
        FaultEvent(time=0.5, kind=NET_PARTITION,
                   target=pod_domain_name(pod), duration=duration),
    ])


# ---------------------------------------------------------------------------
# Schedule coherence


class TestScheduleValidate:
    def test_constructor_validates_by_default(self):
        with pytest.raises(ValueError, match="incoherent fault schedule"):
            FaultSchedule([
                FaultEvent(time=1.0, kind=BOX_RECOVER, target="box:a"),
            ])

    def test_recover_before_crash_rejected(self):
        schedule = FaultSchedule([
            FaultEvent(time=1.0, kind=BOX_RECOVER, target="box:tor:0:0"),
        ], validate=False)
        with pytest.raises(ValueError, match=r"box-recover@1->box:tor:0:0"):
            schedule.validate()

    def test_overlapping_crash_windows_rejected(self):
        schedule = FaultSchedule([
            FaultEvent(time=1.0, kind=BOX_CRASH, target="box:tor:0:0",
                       duration=0.0),
            FaultEvent(time=2.0, kind=BOX_CRASH, target="box:tor:0:0",
                       duration=0.0),
        ], validate=False)
        with pytest.raises(ValueError, match="still crashed"):
            schedule.validate()

    def test_double_link_down_rejected(self):
        schedule = FaultSchedule([
            FaultEvent(time=1.0, kind=LINK_DOWN, target="a->b"),
            FaultEvent(time=2.0, kind=LINK_DOWN, target="a->b"),
        ], validate=False)
        with pytest.raises(ValueError, match="already down"):
            schedule.validate()

    def test_overlapping_domain_windows_rejected(self):
        # duration=0 is permanent, so any later window on the same
        # domain overlaps it.
        schedule = FaultSchedule([
            FaultEvent(time=1.0, kind=NET_PARTITION, target="pod:1",
                       duration=0.0),
            FaultEvent(time=5.0, kind=NET_PARTITION, target="pod:1",
                       duration=1.0),
        ], validate=False)
        with pytest.raises(ValueError, match="pod:1"):
            schedule.validate()

    def test_coherent_timeline_returns_self(self):
        schedule = FaultSchedule([
            FaultEvent(time=1.0, kind=BOX_CRASH, target="box:tor:0:0"),
            FaultEvent(time=2.0, kind=BOX_RECOVER, target="box:tor:0:0"),
            FaultEvent(time=2.0, kind=BOX_CRASH, target="box:tor:0:0"),
            FaultEvent(time=3.0, kind=BOX_RECOVER, target="box:tor:0:0"),
            FaultEvent(time=1.0, kind=LINK_DOWN, target="a->b"),
            FaultEvent(time=2.0, kind=LINK_UP, target="a->b"),
            FaultEvent(time=1.0, kind=NET_PARTITION, target="pod:1",
                       duration=1.0),
            FaultEvent(time=2.0, kind=NET_PARTITION, target="pod:1",
                       duration=1.0),
        ])
        assert schedule.validate() is schedule

    def test_all_violations_listed(self):
        schedule = FaultSchedule([
            FaultEvent(time=1.0, kind=BOX_RECOVER, target="box:a"),
            FaultEvent(time=1.0, kind=LINK_DOWN, target="a->b"),
            FaultEvent(time=2.0, kind=LINK_DOWN, target="a->b"),
        ], validate=False)
        with pytest.raises(ValueError) as exc:
            schedule.validate()
        message = str(exc.value)
        assert "box-recover@1->box:a" in message
        assert "link-down@2->a->b" in message


# ---------------------------------------------------------------------------
# Fault domains


class TestFaultDomains:
    def test_pod_domains_cover_pod_members(self):
        topo = small_topo()
        domains = topology_domains(topo)
        pod0 = domains[pod_domain_name(0)]
        assert set(pod0.hosts) == {
            h for h in topo.hosts() if topo.pod_of(h) == 0}
        assert all(topo.pod_of(b) == 0 for b in pod0.boxes)
        assert pod0.links  # aggr<->core border links

    def test_rack_domains_cover_rack_members(self):
        topo = small_topo()
        domains = topology_domains(topo)
        tor = sorted(topo.switches(TOR))[0]
        rack = domains[rack_domain_name(tor)]
        assert set(rack.hosts) == {
            h for h in topo.hosts() if topo.tor_of(h) == tor}
        assert set(rack.boxes) == {
            b.box_id for b in topo.boxes_at(tor)}
        assert rack.links  # tor<->aggr uplinks

    def test_domains_deterministic(self):
        topo = small_topo()
        assert topology_domains(topo) == topology_domains(topo)

    def test_in_scope_membership(self):
        topo = small_topo()
        host0 = sorted(topo.hosts())[0]
        assert in_scope(topo, host0, pod_domain_name(topo.pod_of(host0)))
        assert not in_scope(topo, host0, pod_domain_name(9))
        tor = topo.tor_of(host0)
        assert in_scope(topo, host0, rack_domain_name(tor))
        assert in_scope(topo, tor, rack_domain_name(tor))
        # Unknown nodes are outside every scope.
        assert not in_scope(topo, "host:999", pod_domain_name(0))
        assert not in_scope(topo, "nonsense", rack_domain_name(tor))


class TestDomainExpansion:
    def test_domain_fail_expands_to_member_crashes(self):
        topo = small_topo()
        domains = topology_domains(topo)
        tor = sorted(topo.switches(TOR))[0]
        rack = domains[rack_domain_name(tor)]
        schedule = FaultSchedule([
            FaultEvent(time=1.0, kind=DOMAIN_FAIL, target=rack.name,
                       duration=2.0),
        ]).expanded(domains)
        crashes = {e.target for e in schedule.events
                   if e.kind == BOX_CRASH}
        recovers = {e.target for e in schedule.events
                    if e.kind == BOX_RECOVER and e.time == 3.0}
        assert crashes == set(rack.boxes)
        assert recovers == set(rack.boxes)
        downs = {e.target for e in schedule.events if e.kind == LINK_DOWN}
        assert downs == set(rack.links)

    def test_net_partition_cuts_links_only(self):
        topo = small_topo()
        domains = topology_domains(topo)
        schedule = FaultSchedule([
            FaultEvent(time=1.0, kind=NET_PARTITION, target="pod:1",
                       duration=0.0),
        ]).expanded(domains)
        assert not [e for e in schedule.events if e.kind == BOX_CRASH]
        downs = [e for e in schedule.events if e.kind == LINK_DOWN]
        assert {e.target for e in downs} == set(domains["pod:1"].links)
        # duration=0 is permanent: no matching link-up events.
        assert not [e for e in schedule.events if e.kind == LINK_UP]
        # The marker itself is retained for partition-aware consumers.
        assert schedule.partitions_at(2.0) == ["pod:1"]

    def test_unknown_domain_rejected_with_catalogue(self):
        topo = small_topo()
        schedule = FaultSchedule([
            FaultEvent(time=1.0, kind=NET_PARTITION, target="pod:99"),
        ])
        with pytest.raises(ValueError, match="unknown fault domain"):
            schedule.expanded(topology_domains(topo))


# ---------------------------------------------------------------------------
# Gray detection


class TestGrayDetector:
    def test_seeded_outlier_flags_immediately(self):
        detector = GrayDetector(GrayPolicy(threshold=4.0), baseline=0.001)
        assert detector.observe("box:a", 0.01, at=0.0)
        assert detector.is_gray("box:a")
        assert detector.gray_boxes() == ["box:a"]

    def test_outliers_do_not_poison_the_baseline(self):
        detector = GrayDetector(GrayPolicy(threshold=4.0), baseline=0.001)
        for t in range(5):
            detector.observe("box:a", 0.5, at=float(t))
        # Five huge samples later the baseline is still the seed: a
        # gray box cannot talk the detector into calling it normal.
        assert detector.baseline_of("box:a") == pytest.approx(0.001)
        assert detector.is_gray("box:a")

    def test_healthy_sample_clears_the_flag(self):
        detector = GrayDetector(GrayPolicy(threshold=4.0), baseline=0.001)
        detector.observe("box:a", 0.01, at=0.0)
        assert detector.is_gray("box:a")
        assert not detector.observe("box:a", 0.001, at=1.0)
        assert not detector.is_gray("box:a")

    def test_unseeded_first_sample_becomes_baseline(self):
        detector = GrayDetector(GrayPolicy(threshold=4.0))
        assert not detector.observe("box:a", 0.4, at=0.0)
        assert detector.baseline_of("box:a") == pytest.approx(0.4)
        # Relative to its own (slow) baseline nothing is an outlier.
        assert not detector.observe("box:a", 0.4, at=1.0)
        assert not detector.is_gray("box:a")


class TestCompleteness:
    def test_exact_for(self):
        comp = Completeness.exact_for(8)
        assert comp.exact and comp.fraction == 1.0
        assert comp.missing_workers == ()

    def test_fraction_and_exact(self):
        comp = Completeness(workers_total=4, workers_included=3,
                            missing_workers=(2,),
                            missing_scopes=("pod:1",))
        assert not comp.exact
        assert comp.fraction == pytest.approx(0.75)
        body = comp.to_dict()
        assert body["missing_workers"] == [2]
        assert body["missing_scopes"] == ["pod:1"]

    def test_merged_unions_missing_workers(self):
        parts = [
            Completeness(4, 3, (1,), ("pod:1",)),
            Completeness(4, 3, (2,), ("rack:tor:1:0",)),
        ]
        merged = Completeness.merged(parts)
        assert merged.workers_total == 4
        assert merged.missing_workers == (1, 2)
        assert merged.workers_included == 2
        assert set(merged.missing_scopes) == {"pod:1", "rack:tor:1:0"}

    def test_incoherent_counts_rejected(self):
        with pytest.raises(ValueError):
            Completeness(workers_total=2, workers_included=3)


# ---------------------------------------------------------------------------
# Platform partial delivery


class TestPartialDelivery:
    def _workers(self, topo):
        """Worker hosts split across both pods, with known values."""
        hosts = sorted(topo.hosts(),
                       key=lambda h: (topo.pod_of(h), h))
        pod0 = [h for h in hosts if topo.pod_of(h) == 0]
        pod1 = [h for h in hosts if topo.pod_of(h) == 1]
        workers = pod0[1:3] + pod1[:2]          # indices 0,1 / 2,3
        values = [1.0, 2.0, 4.0, 8.0]
        return pod0[0], list(zip(workers, values))

    def test_partial_value_is_exact_over_included_workers(self):
        topo = small_topo()
        master, partials = self._workers(topo)
        platform = sum_platform(topo, pod_partition(), PartitionPolicy())
        platform.advance_clock(1.0)
        outcome = platform.execute_request("sum", "r1", master, partials)
        # Ground truth: the pod-0 workers only, nothing double-counted.
        assert outcome.value == pytest.approx(1.0 + 2.0)
        comp = outcome.completeness
        assert comp is not None and not comp.exact
        assert comp.workers_total == 4
        assert comp.workers_included == 2
        assert comp.missing_workers == (2, 3)
        assert comp.missing_scopes == ("pod:1",)
        assert comp.fraction == pytest.approx(0.5)
        cut = outcome.events_of_kind("partition")
        assert len(cut) == 2

    def test_fail_stop_baseline_raises(self):
        topo = small_topo()
        master, partials = self._workers(topo)
        platform = sum_platform(topo, pod_partition(), policy=None)
        platform.advance_clock(1.0)
        with pytest.raises(SubtreeUnreachable) as exc:
            platform.execute_request("sum", "r1", master, partials)
        assert exc.value.missing_workers == (2, 3)
        assert exc.value.scopes == ("pod:1",)

    def test_no_reachable_workers_always_raises(self):
        topo = small_topo()
        hosts = sorted(topo.hosts(), key=lambda h: (topo.pod_of(h), h))
        master = [h for h in hosts if topo.pod_of(h) == 0][0]
        partials = [(h, 1.0) for h in hosts if topo.pod_of(h) == 1][:3]
        platform = sum_platform(topo, pod_partition(), PartitionPolicy())
        platform.advance_clock(1.0)
        # An answer covering zero workers is no answer, policy or not.
        with pytest.raises(SubtreeUnreachable):
            platform.execute_request("sum", "r1", master, partials)

    def test_post_heal_requests_are_exact_again(self):
        topo = small_topo()
        master, partials = self._workers(topo)
        platform = sum_platform(topo, pod_partition(duration=1.0),
                                PartitionPolicy())
        platform.advance_clock(1.0)
        inside = platform.execute_request("sum", "r1", master, partials)
        assert not inside.completeness.exact
        platform.advance_clock(30.0)
        healed = platform.execute_request("sum", "r2", master, partials)
        assert healed.completeness.exact
        assert healed.value == pytest.approx(sum(v for _, v in partials))
        assert not healed.events_of_kind("partition")


class TestGrayHedging:
    def _gray_everything(self, topo, severity=400.0):
        return FaultSchedule([
            FaultEvent(time=0.5, kind=BOX_GRAY, target=info.box_id,
                       duration=1e9, severity=severity)
            for info in topo.all_boxes()
        ])

    def _run(self, policy):
        topo = small_topo()
        schedule = self._gray_everything(topo)
        platform = sum_platform(topo, schedule, policy)
        hosts = sorted(topo.hosts(), key=lambda h: (topo.pod_of(h), h))
        partials = [(h, 1.0) for h in hosts[1:5]]
        platform.advance_clock(1.0)
        start = platform.clock
        outcome = platform.execute_request("sum", "r1", hosts[0],
                                           partials)
        return platform, outcome, platform.clock - start

    def test_hedging_caps_gray_latency(self):
        _, slow, slow_latency = self._run(policy=None)
        platform, hedged, hedged_latency = self._run(PartitionPolicy())
        # Exactness is never traded away -- only latency.
        assert slow.value == hedged.value == pytest.approx(4.0)
        assert hedged.events_of_kind("hedge")
        assert not slow.events_of_kind("hedge")
        assert hedged_latency < slow_latency

    def test_detector_flags_and_health_report_shows_gray(self):
        platform, _, _ = self._run(PartitionPolicy())
        flagged = platform.gray_detector.gray_boxes()
        assert flagged
        report = platform.health_report()
        assert any(report[b].state == GRAY for b in flagged)


# ---------------------------------------------------------------------------
# Serving: 206 bodies, the completeness floor, partition 503s

SERVE_WORKERS = 4


def serve_request(tenant="t1", rid="r1", seed=0):
    # Four explicit gradients: row i lands on sorted-host i (the
    # service maps explicit payload rows to hosts by index), so with
    # the rack of rows 2-3 cut exactly those rows drop out.
    return {"op": OP_MLGRAD, "tenant": tenant, "id": rid,
            "payload_seed": seed,
            "gradients": [[1.0, float(i)] for i in range(SERVE_WORKERS)]}


class ServeScenario:
    """One rack cut, coordinator outside both the rack and the rows."""

    def __init__(self):
        self.topo = small_topo()
        self.hosts = sorted(self.topo.hosts())
        # Cut the rack of row 2's host (the second pod-0 rack).
        self.tor = self.topo.tor_of(self.hosts[2])
        self.scope = rack_domain_name(self.tor)
        self.missing = [i for i in range(SERVE_WORKERS)
                        if self.topo.tor_of(self.hosts[i]) == self.tor]
        self.included = [i for i in range(SERVE_WORKERS)
                         if i not in self.missing]
        assert self.missing and self.included
        self.seed = self._coordinator_seed()

    def _coordinator_seed(self):
        """A payload seed whose coordinator is a pod-1 host.

        Pod-1 hosts are outside the cut rack (same side as the other
        pod-0 rack via the core) and not among the explicit payload
        rows, so the request is legal and partially deliverable.
        """
        for seed in range(1, 500):
            master, _ = pick_endpoints(self.hosts, seed, 8)
            if self.topo.pod_of(master) == 1:
                return seed
        raise AssertionError("no pod-1 coordinator seed found")

    def schedule(self):
        return FaultSchedule([
            FaultEvent(time=0.5, kind=NET_PARTITION, target=self.scope,
                       duration=0.0),
        ])

    def service(self, policy, **config):
        return AggregationService(ServeConfig(
            topo=SMALL, admission=False, faults=self.schedule(),
            partition=policy, **config))


class TestServePartialResponses:
    def test_206_carries_exact_completeness(self):
        scenario = ServeScenario()
        service = scenario.service(PartitionPolicy())
        service.platform.advance_clock(1.0)
        response = service.handle(serve_request(seed=scenario.seed))
        assert response["status"] == 206
        assert response["value"] == pytest.approx(
            [float(len(scenario.included)),
             float(sum(scenario.included))])
        comp = response["completeness"]
        assert comp["exact"] is False
        assert comp["missing_workers"] == scenario.missing
        assert comp["missing_scopes"] == [scenario.scope]
        assert comp["fraction"] == pytest.approx(
            len(scenario.included) / SERVE_WORKERS)

    def test_completeness_floor_maps_to_503(self):
        scenario = ServeScenario()
        service = scenario.service(
            PartitionPolicy(),
            tenants={"picky": TenantPolicy(min_completeness=0.9)})
        service.platform.advance_clock(1.0)
        response = service.handle(
            serve_request(tenant="picky", seed=scenario.seed))
        assert response["status"] == 503
        assert response["error"] == "incomplete"
        assert response["completeness"]["fraction"] < 0.9

    def test_fail_stop_arm_maps_to_503_partition(self):
        scenario = ServeScenario()
        service = scenario.service(policy=None)
        service.platform.advance_clock(1.0)
        response = service.handle(serve_request(seed=scenario.seed))
        assert response["status"] == 503
        assert response["error"] == "partition"
        assert response["missing_workers"] == scenario.missing
        assert response["scopes"] == [scenario.scope]

    def test_stats_count_partials_and_stay_coherent(self):
        scenario = ServeScenario()
        service = scenario.service(PartitionPolicy())
        service.platform.advance_clock(1.0)
        response = service.handle(serve_request(seed=scenario.seed))
        assert response["status"] == 206
        stats = service.report.stats("t1")
        assert stats.partial == 1
        assert service.report.accounting_errors() == []


class TestHttpFrameRobustness:
    def _raw_exchange(self, raw):
        async def scenario():
            frontend = HttpFrontend(AggregationService())
            host, port = await frontend.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(raw)
            await writer.drain()
            status_line = await reader.readline()
            while (await reader.readline()) not in (b"\r\n", b""):
                pass
            payload = json.loads(await reader.read(65536))
            writer.close()
            await frontend.stop()
            return status_line, payload

        return asyncio.run(scenario())

    def test_garbled_request_line_is_a_400(self):
        status_line, payload = self._raw_exchange(b"\xff\xfe garbage\r\n\r\n")
        assert b"400" in status_line
        assert payload["status"] == 400
        assert payload["error"] == "bad-request-line"

    def test_non_integer_content_length_is_a_400(self):
        status_line, payload = self._raw_exchange(
            b"POST /v1/query HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert b"400" in status_line
        assert payload["error"] == "bad-content-length"

    def test_negative_content_length_is_a_400(self):
        status_line, payload = self._raw_exchange(
            b"POST /v1/query HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
        assert b"400" in status_line
        assert payload["error"] == "bad-content-length"

    def test_oversized_body_is_a_413(self):
        status_line, payload = self._raw_exchange(
            b"POST /v1/query HTTP/1.1\r\n"
            b"Content-Length: 10485760\r\n\r\n")
        assert b"413" in status_line
        assert payload["status"] == 413
        assert payload["error"] == "payload-too-large"
