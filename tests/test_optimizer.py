"""The self-healing control loop (repro.core.optimizer) and its
robustness satellites.

Covers the four stages of the loop -- audit, strategy, plan, apply --
plus the platform hooks the loop depends on: heartbeat staleness
synthesising ``suspect``, ``recover_box`` nudging an open breaker to
half-open, and the seeded decorrelated retry jitter the fleet uses to
spread probe storms.  Mid-request migration (the §3.1 arithmetic) is
exercised in test_recovery.py and under chaos in
test_chaos_invariants.py; here the plan-level drain-then-cutover
protocol is pinned down deterministically, rollback path included.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggbox.functions import SumFunction
from repro.aggbox.overload import FAILED, SUSPECT, OverloadPolicy
from repro.aggregation import deploy_boxes
from repro.core import (
    BreakerPolicy,
    NetAggPlatform,
    OverloadConfig,
)
from repro.core.breaker import CLOSED, HALF_OPEN, OPEN
from repro.core.optimizer import (
    APPLIED,
    DRAIN,
    FAILED_OVER,
    MIGRATE,
    NOOP,
    ROLLED_BACK,
    UNDRAIN,
    Action,
    ActionPlan,
    Auditor,
    AuditReport,
    BoxAudit,
    OptimizerLoop,
    PlanApplier,
    StrategyConfig,
    get_strategy,
    noop_plan,
)
from repro.faults.retry import RetryPolicy
from repro.obs import METRICS
from repro.topology import ThreeTierParams, three_tier
from repro.wire.serializer import read_float, write_float

SMALL = ThreeTierParams(
    n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2, hosts_per_tor=4
)

PROPS = settings(max_examples=100, deadline=None)


def make_platform(overload=None):
    topo = three_tier(SMALL)
    deploy_boxes(topo)
    platform = NetAggPlatform(topo, overload=overload)
    platform.register_app(
        "sum", SumFunction(),
        lambda v: write_float(float(v)), lambda b: read_float(b)[0],
    )
    return platform


def box_ids(platform):
    return sorted(info.box_id for info in platform.topology.all_boxes())


def audit(box_id, state="healthy", pending=0, util=0.0, drained=False,
          sheds=0, flushes=0):
    return BoxAudit(box_id=box_id, state=state, pending=pending,
                    utilization=util, sheds=sheds, flushes=flushes,
                    drained=drained)


def report(*boxes, at=1.0, retry_delta=0):
    return AuditReport(at=at, boxes=tuple(boxes),
                       retry_delta=retry_delta)


# ---------------------------------------------------------------------------
# Satellite: seeded decorrelated retry jitter


class TestDecorrelatedJitter:
    @given(attempt=st.integers(1, 8), key=st.text(max_size=12),
           seed=st.integers(0, 2**16))
    @PROPS
    def test_delays_stay_within_base_and_cap(self, attempt, key, seed):
        policy = RetryPolicy(decorrelated=True, seed=seed,
                             base_backoff=0.01, max_backoff=0.25)
        delay = policy.backoff(attempt, key)
        assert policy.base_backoff <= delay <= policy.max_backoff

    @given(attempt=st.integers(1, 8), key=st.text(max_size=12),
           seed=st.integers(0, 2**16))
    @PROPS
    def test_same_seed_reproduces_bit_identical_delays(
            self, attempt, key, seed):
        a = RetryPolicy(decorrelated=True, seed=seed)
        b = RetryPolicy(decorrelated=True, seed=seed)
        assert a.backoff(attempt, key) == b.backoff(attempt, key)

    def test_different_seeds_decorrelate(self):
        a = RetryPolicy(decorrelated=True, seed=1)
        b = RetryPolicy(decorrelated=True, seed=2)
        assert a.delays("req:1") != b.delays("req:1")

    def test_different_keys_decorrelate(self):
        policy = RetryPolicy(decorrelated=True, max_attempts=4)
        assert policy.delays("host:1") != policy.delays("host:2")

    @given(attempt=st.integers(1, 8), key=st.text(max_size=12))
    @PROPS
    def test_default_scheme_stays_within_jitter_band(self, attempt, key):
        policy = RetryPolicy()
        raw = min(policy.base_backoff * policy.multiplier ** (attempt - 1),
                  policy.max_backoff)
        delay = policy.backoff(attempt, key)
        assert raw * (1.0 - policy.jitter) <= delay <= raw


# ---------------------------------------------------------------------------
# Satellite: stale heartbeats synthesise ``suspect``


class TestHeartbeatStaleness:
    def test_stale_heartbeats_report_suspect(self):
        overload = OverloadConfig(queue=OverloadPolicy(),
                                  heartbeat_staleness=1.0)
        platform = make_platform(overload)
        platform.advance_clock(5.0)  # box clocks still at 0: all stale
        states = {beat.state for beat in platform.health_report().values()}
        assert states == {SUSPECT}

    def test_fresh_heartbeats_keep_their_state(self):
        overload = OverloadConfig(queue=OverloadPolicy(),
                                  heartbeat_staleness=1.0)
        platform = make_platform(overload)
        platform.advance_clock(5.0)
        fresh = box_ids(platform)[0]
        platform.box_runtime(fresh).clock = 5.0
        states = {bid: beat.state
                  for bid, beat in platform.health_report().items()}
        assert states[fresh] == "healthy"
        assert all(state == SUSPECT
                   for bid, state in states.items() if bid != fresh)

    def test_failed_outranks_suspect(self):
        overload = OverloadConfig(queue=OverloadPolicy(),
                                  heartbeat_staleness=1.0)
        platform = make_platform(overload)
        dead = box_ids(platform)[0]
        platform.box_runtime(dead).mark_failed()
        platform.advance_clock(5.0)
        assert platform.health_report()[dead].state == FAILED

    def test_explicit_staleness_overrides_config(self):
        overload = OverloadConfig(queue=OverloadPolicy(),
                                  heartbeat_staleness=1.0)
        platform = make_platform(overload)
        platform.advance_clock(5.0)
        states = {beat.state
                  for beat in platform.health_report(staleness=10.0).values()}
        assert states == {"healthy"}

    def test_no_threshold_means_no_suspicion(self):
        platform = make_platform()  # overload config absent entirely
        platform.advance_clock(100.0)
        states = {beat.state for beat in platform.health_report().values()}
        assert states == {"healthy"}


# ---------------------------------------------------------------------------
# Satellite: recover_box nudges an open breaker to half-open


class TestRecoverForcesProbe:
    def make(self):
        overload = OverloadConfig(
            breaker=BreakerPolicy(failure_threshold=1, reset_timeout=1000.0))
        return make_platform(overload)

    def test_recover_box_moves_open_breaker_to_half_open(self):
        platform = self.make()
        box = box_ids(platform)[0]
        breaker = platform.breakers.breaker(box)
        breaker.record_failure(0.0)
        assert breaker.state == OPEN
        # Regression: recovery used to leave the breaker waiting out
        # the full reset timeout, refusing the recovered box for
        # reset_timeout more virtual seconds.
        platform.recover_box(box)
        assert breaker.state == HALF_OPEN
        assert breaker.allow(0.0)

    def test_recover_leaves_closed_breaker_alone(self):
        platform = self.make()
        box = box_ids(platform)[0]
        breaker = platform.breakers.breaker(box)
        platform.recover_box(box)
        assert breaker.state == CLOSED

    def test_false_recovery_costs_one_probe(self):
        platform = self.make()
        box = box_ids(platform)[0]
        breaker = platform.breakers.breaker(box)
        breaker.record_failure(0.0)
        platform.recover_box(box)
        breaker.record_failure(0.1)  # the probe fails: re-open
        assert breaker.state == OPEN


# ---------------------------------------------------------------------------
# Strategies are pure, deterministic and capped


class TestStrategies:
    def test_stabilize_migrates_worst_queue_first(self):
        plan = get_strategy("stabilize_p99")(report(
            audit("box:a", state="pressured", pending=3),
            audit("box:b", state="suspect", pending=9),
            audit("box:c"), audit("box:d"),
        ), StrategyConfig(max_actions=1))
        assert [a.target for a in plan.of_kind(MIGRATE)] == ["box:b"]
        assert plan.actions[0].cost == 9.0

    def test_stabilize_noops_when_all_trusted(self):
        plan = get_strategy("stabilize_p99")(
            report(audit("box:a"), audit("box:b")), StrategyConfig())
        assert plan.is_noop

    def test_stabilize_respects_min_active_guard(self):
        plan = get_strategy("stabilize_p99")(report(
            audit("box:a", state="shedding", pending=1),
            audit("box:b", state="shedding", pending=2),
        ), StrategyConfig(min_active=2))
        assert plan.is_noop

    def test_consolidate_drains_coldest_idle_boxes(self):
        plan = get_strategy("consolidate_underused")(report(
            audit("box:a", util=0.05),
            audit("box:b", util=0.01),
            audit("box:c", util=0.9),
            audit("box:d", util=0.02, pending=4),  # busy: never drained
        ), StrategyConfig(max_actions=2, cold_utilization=0.15))
        assert [a.target for a in plan.of_kind(DRAIN)] \
            == ["box:b", "box:a"]

    def test_rebalance_undrains_cooled_then_migrates_hottest(self):
        plan = get_strategy("rebalance_hot_edges")(report(
            audit("box:a", util=0.05, drained=True),
            audit("box:b", util=2.5),
            audit("box:c", util=0.9),
        ), StrategyConfig(hot_utilization=2.0, cold_utilization=0.5,
                          max_actions=2, min_active=1))
        kinds = [(a.kind, a.target) for a in plan.actions]
        assert kinds == [(UNDRAIN, "box:a"), (MIGRATE, "box:b")]

    def test_rebalance_noops_when_balanced(self):
        plan = get_strategy("rebalance_hot_edges")(
            report(audit("box:a", util=0.6), audit("box:b", util=0.7)),
            StrategyConfig(hot_utilization=2.0, cold_utilization=0.5))
        assert plan.is_noop

    def test_unknown_strategy_raises(self):
        with pytest.raises(KeyError, match="unknown strategy"):
            get_strategy("definitely_not_a_strategy")

    def test_action_validation(self):
        with pytest.raises(ValueError):
            Action(kind="explode", target="box:a")
        with pytest.raises(ValueError):
            Action(kind=MIGRATE)  # needs a target
        with pytest.raises(ValueError):
            StrategyConfig(hot_utilization=0.1, cold_utilization=0.5)

    def test_noop_plan_shape(self):
        plan = noop_plan("s", 1.0, reason="all quiet")
        assert plan.is_noop and plan.cost == 0.0


# ---------------------------------------------------------------------------
# The applier: drain-then-cutover on a real platform


class TestPlanApplier:
    def plan(self, *actions, strategy="test", at=1.0):
        return ActionPlan(strategy=strategy, at=at, actions=tuple(actions))

    def test_drain_and_undrain_round_trip(self):
        platform = make_platform()
        box = box_ids(platform)[0]
        applier = PlanApplier(platform)
        applier.apply(self.plan(Action(kind=DRAIN, target=box)))
        assert platform.drained_boxes() == {box}
        applier.apply(self.plan(Action(kind=UNDRAIN, target=box)))
        assert platform.drained_boxes() == set()

    def test_migrate_applies_and_keeps_box_drained(self):
        platform = make_platform()
        box = box_ids(platform)[0]
        result = PlanApplier(platform).apply(
            self.plan(Action(kind=MIGRATE, target=box)))
        assert [m.outcome for m in result.migrations] == [APPLIED]
        assert platform.drained_boxes() == {box}
        assert result.rollbacks == 0

    def test_guard_rolls_back_migration_and_undrains(self):
        platform = make_platform()
        boxes = box_ids(platform)
        before = METRICS.counter("optimizer.rollbacks").value
        applier = PlanApplier(platform, min_active=len(boxes))
        result = applier.apply(
            self.plan(Action(kind=MIGRATE, target=boxes[0])))
        assert [m.outcome for m in result.migrations] == [ROLLED_BACK]
        assert platform.drained_boxes() == set()  # rollback undrained it
        assert result.rollbacks == 1
        assert METRICS.counter("optimizer.rollbacks").value == before + 1

    def test_guard_skips_drain_without_rollback(self):
        platform = make_platform()
        boxes = box_ids(platform)
        applier = PlanApplier(platform, min_active=len(boxes))
        result = applier.apply(
            self.plan(Action(kind=DRAIN, target=boxes[0])))
        assert result.applied == []
        assert [reason for _, reason in result.skipped] \
            == ["guard: too few active"]
        assert platform.drained_boxes() == set()

    def test_source_death_in_window_fails_over(self):
        platform = make_platform()
        boxes = box_ids(platform)
        victim = boxes[0]
        applier = PlanApplier(
            platform, interrupt=lambda: platform.fail_box(victim))
        result = applier.apply(
            self.plan(Action(kind=MIGRATE, target=victim)))
        assert [m.outcome for m in result.migrations] == [FAILED_OVER]

    def test_noop_actions_apply_without_side_effects(self):
        platform = make_platform()
        result = PlanApplier(platform).apply(noop_plan("test", 0.0))
        assert [a.kind for a in result.applied] == [NOOP]
        assert platform.drained_boxes() == set()


# ---------------------------------------------------------------------------
# The loop end to end: audit -> strategy -> plan -> apply


class TestOptimizerLoop:
    def make_loop(self, platform, strategy="stabilize_p99", util=None,
                  **kwargs):
        auditor = Auditor(
            health=platform.health_report,
            utilization=(lambda: util) if util is not None else None,
            drained=platform.drained_boxes,
        )
        applier = PlanApplier(platform)
        return OptimizerLoop(auditor, strategy, applier, **kwargs)

    def test_healthy_platform_ticks_to_noop(self):
        platform = make_platform()
        loop = self.make_loop(platform)
        tick = loop.tick(1.0)
        assert tick.plan.is_noop and not tick.acted
        assert loop.history == [tick]

    def test_suspect_boxes_get_migrated(self):
        overload = OverloadConfig(queue=OverloadPolicy(),
                                  heartbeat_staleness=1.0)
        platform = make_platform(overload)
        platform.advance_clock(10.0)  # every heartbeat now stale
        loop = self.make_loop(platform)
        tick = loop.tick(10.0)
        assert tick.acted
        migrated = [a.target for a in tick.plan.of_kind(MIGRATE)]
        assert len(migrated) == loop.config.max_actions
        assert platform.drained_boxes() == set(migrated)

    def test_dry_run_plans_without_touching_the_platform(self):
        overload = OverloadConfig(queue=OverloadPolicy(),
                                  heartbeat_staleness=1.0)
        platform = make_platform(overload)
        platform.advance_clock(10.0)
        loop = self.make_loop(platform, dry_run=True)
        tick = loop.tick(10.0)
        assert tick.result is None and not tick.acted
        assert not tick.plan.is_noop  # it *would* have migrated
        assert platform.drained_boxes() == set()

    def test_rebalance_follows_load_then_returns_capacity(self):
        platform = make_platform()
        boxes = box_ids(platform)
        util = {b: 0.0 for b in boxes}
        util[boxes[0]] = 3.0
        loop = self.make_loop(
            platform, strategy="rebalance_hot_edges", util=util,
            config=StrategyConfig(hot_utilization=2.0,
                                  cold_utilization=0.5, max_actions=1))
        tick = loop.tick(1.0)
        assert [a.target for a in tick.plan.of_kind(MIGRATE)] == [boxes[0]]
        assert platform.drained_boxes() == {boxes[0]}
        util[boxes[0]] = 0.0  # the hot spot cooled: capacity returns
        tick = loop.tick(2.0)
        assert [a.target for a in tick.plan.of_kind(UNDRAIN)] == [boxes[0]]
        assert platform.drained_boxes() == set()

    def test_callable_strategy_accepted(self):
        platform = make_platform()
        loop = self.make_loop(
            platform, strategy=lambda rep, cfg: noop_plan("mine", rep.at))
        assert loop.tick(1.0).plan.strategy == "mine"

    def test_tick_counters_advance(self):
        platform = make_platform()
        before = METRICS.counter("optimizer.ticks").value
        audits_before = METRICS.counter("optimizer.audits").value
        loop = self.make_loop(platform)
        loop.tick(1.0)
        loop.tick(2.0)
        assert METRICS.counter("optimizer.ticks").value == before + 2
        assert METRICS.counter("optimizer.audits").value \
            == audits_before + 2

    def test_audit_reports_retry_delta(self):
        platform = make_platform()
        loop = self.make_loop(platform)
        loop.tick(1.0)
        METRICS.counter("platform.shim.retry").inc(3)
        assert loop.tick(2.0).report.retry_delta == 3
