"""Tests for repro.units."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestRates:
    def test_gbps(self):
        assert units.Gbps(1.0) == 125e6

    def test_mbps(self):
        assert units.Mbps(8.0) == 1e6

    def test_kbps(self):
        assert units.Kbps(8.0) == 1e3

    def test_roundtrip(self):
        assert units.to_gbps(units.Gbps(9.2)) == pytest.approx(9.2)

    def test_sizes(self):
        assert units.MB == 1000 * units.KB
        assert units.GB == 1000 * units.MB
        assert units.MiB == 1024 * units.KiB


class TestPercentile:
    def test_single_value(self):
        assert units.percentile([42.0], 99.0) == 42.0

    def test_median_odd(self):
        assert units.percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_median_even_interpolates(self):
        assert units.percentile([1.0, 2.0, 3.0, 4.0], 50.0) == 2.5

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert units.percentile(values, 0.0) == 1.0
        assert units.percentile(values, 100.0) == 9.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            units.percentile([], 50.0)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            units.percentile([1.0], 101.0)

    @given(st.lists(st.floats(0, 1e9), min_size=1, max_size=50),
           st.floats(0, 100))
    def test_matches_numpy(self, values, p):
        numpy = pytest.importorskip("numpy")
        expected = float(numpy.percentile(values, p))
        assert units.percentile(values, p) == pytest.approx(expected)

    @given(st.lists(st.floats(0, 1e9), min_size=1, max_size=50))
    def test_p99_bounded_by_max(self, values):
        assert units.percentile(values, 99.0) <= max(values) + 1e-9

    @given(st.lists(st.floats(0, 1e9), min_size=1, max_size=50))
    def test_extremes_hit_min_and_max(self, values):
        assert units.percentile(values, 0.0) == min(values)
        assert units.percentile(values, 100.0) == max(values)

    @given(st.floats(0, 1e9), st.floats(0, 100))
    def test_single_element_is_constant(self, value, p):
        assert units.percentile([value], p) == value

    @given(st.lists(st.floats(0, 1e9), min_size=1, max_size=50),
           st.floats(0, 100))
    def test_result_within_data_range(self, values, p):
        result = units.percentile(values, p)
        assert min(values) <= result <= max(values)

    @given(st.lists(st.floats(0, 1e6), min_size=2, max_size=50),
           st.integers(1, 99))
    def test_matches_statistics_quantiles(self, values, p):
        # statistics.quantiles with method="inclusive" uses the same
        # linear interpolation as numpy's default percentile.
        import statistics

        cut = statistics.quantiles(values, n=100,
                                   method="inclusive")[p - 1]
        assert units.percentile(values, float(p)) == pytest.approx(
            cut, abs=1e-6)


class TestMean:
    def test_basic(self):
        assert units.mean([1.0, 2.0, 3.0]) == 2.0

    def test_accepts_generators(self):
        assert units.mean(x for x in (2.0, 4.0)) == 3.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            units.mean([])


class TestCdfPoints:
    def test_fractions_reach_one(self):
        points = units.cdf_points([3.0, 1.0, 2.0])
        assert [v for v, _ in points] == [1.0, 2.0, 3.0]
        assert points[-1][1] == pytest.approx(1.0)

    def test_fractions_monotone(self):
        points = units.cdf_points([5.0, 5.0, 1.0, 9.0])
        fractions = [f for _, f in points]
        assert fractions == sorted(fractions)


class TestApproxEqual:
    def test_within_eps(self):
        assert units.approx_equal(1.0, 1.0 + 1e-12)

    def test_outside_eps(self):
        assert not units.approx_equal(1.0, 1.1)
