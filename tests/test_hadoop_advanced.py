"""Tests for the range partitioner (TeraSort) and iterative PageRank."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.hadoop import (
    MapReduceEngine,
    generate_graph,
    generate_terasort_records,
    pagerank,
    terasort_job,
    wordcount_job,
)


def chop(data, n=5):
    return [data[i::n] for i in range(n)]


class TestRangePartitioner:
    def test_output_globally_sorted(self):
        records = generate_terasort_records(400, seed=9)
        engine = MapReduceEngine(n_reducers=4, partitioner="range")
        _, stats = engine.run(terasort_job(), chop(records),
                              use_combiner=False)
        keys = [k for k, _ in stats.output_pairs]
        assert keys == sorted(keys)
        assert sum(v for _, v in stats.output_pairs) == 400

    def test_hash_partitioner_also_sorted_output(self):
        # Hash partitioning sorts the concatenated output explicitly.
        records = generate_terasort_records(200, seed=9)
        engine = MapReduceEngine(n_reducers=4, partitioner="hash")
        _, stats = engine.run(terasort_job(), chop(records),
                              use_combiner=False)
        keys = [k for k, _ in stats.output_pairs]
        assert keys == sorted(keys)

    def test_range_and_hash_agree_on_results(self):
        text = ["b a c", "a a d"]
        for partitioner in ("hash", "range"):
            engine = MapReduceEngine(n_reducers=3, partitioner=partitioner)
            result, _ = engine.run(wordcount_job(), [text])
            assert result == {"a": 3, "b": 1, "c": 1, "d": 1}

    def test_range_balances_reducers(self):
        records = generate_terasort_records(1000, seed=9)
        engine = MapReduceEngine(n_reducers=4, partitioner="range")
        route = engine._make_partitioner([[(r, 1) for r in records]])
        counts = [0] * 4
        for record in records:
            counts[route(record)] += 1
        assert min(counts) > 100  # roughly balanced buckets

    def test_unknown_partitioner_rejected(self):
        with pytest.raises(ValueError):
            MapReduceEngine(partitioner="zigzag")

    @given(st.lists(st.text("abcdef", min_size=1, max_size=6),
                    min_size=1, max_size=60),
           st.integers(1, 5))
    @settings(max_examples=50, deadline=None)
    def test_range_sort_property(self, keys, n_reducers):
        engine = MapReduceEngine(n_reducers=n_reducers,
                                 partitioner="range")
        _, stats = engine.run(terasort_job(), [keys], use_combiner=False)
        out = [k for k, _ in stats.output_pairs]
        assert out == sorted(set(keys))
        assert sum(v for _, v in stats.output_pairs) == len(keys)


class TestIterativePageRank:
    def test_converges(self):
        result = pagerank(generate_graph(40, seed=7), tolerance=1e-8)
        assert result.converged
        assert result.iterations < 50

    def test_rank_mass_is_one(self):
        result = pagerank(generate_graph(40, seed=7), tolerance=1e-10)
        assert sum(result.ranks.values()) == pytest.approx(1.0, abs=1e-6)

    def test_matches_networkx(self):
        networkx = pytest.importorskip("networkx")
        pytest.importorskip("numpy")  # networkx.pagerank is scipy-backed
        graph = generate_graph(60, out_degree=3, seed=5)
        result = pagerank(graph, tolerance=1e-10, max_iterations=200)
        G = networkx.DiGraph()
        for node, targets in graph:
            G.add_node(node)
            for target in targets:
                G.add_edge(node, target)
        reference = networkx.pagerank(G, alpha=0.85, tol=1e-12,
                                      max_iter=500)
        for node, expected in reference.items():
            assert result.ranks[node] == pytest.approx(expected, abs=1e-8)

    def test_hubs_rank_higher(self):
        # generate_graph prefers low-id targets: node 0 is a hub.
        result = pagerank(generate_graph(50, seed=3), tolerance=1e-8)
        median = sorted(result.ranks.values())[25]
        assert result.ranks[0] > 1.5 * median

    def test_shuffle_bytes_accumulate(self):
        result = pagerank(generate_graph(30, seed=3), max_iterations=5,
                          tolerance=1e-15)
        assert result.iterations == 5
        assert len(result.per_iteration) == 5
        assert result.total_shuffle_bytes == pytest.approx(
            sum(s.shuffle_bytes for s in result.per_iteration)
        )

    def test_every_iteration_is_aggregatable(self):
        """The shuffle shrinks when combined on-path: PR's per-iteration
        traffic is exactly what NetAgg aggregates (Fig. 22's PR row)."""
        graph = generate_graph(60, seed=3)
        engine = MapReduceEngine()
        from repro.apps.hadoop.benchmarks import pagerank_job

        job = pagerank_job()
        _, plain = engine.run(job, chop(graph), use_combiner=False)
        _, combined = engine.run(job, chop(graph), on_path_levels=2,
                                 use_combiner=False)
        assert combined.shuffle_bytes < plain.shuffle_bytes

    def test_validation(self):
        graph = generate_graph(10, seed=1)
        with pytest.raises(ValueError):
            pagerank(graph, damping=1.5)
        with pytest.raises(ValueError):
            pagerank(graph, max_iterations=0)
        with pytest.raises(ValueError):
            pagerank(graph, tolerance=0.0)
        with pytest.raises(ValueError):
            pagerank([])


class TestAdPredictorCtr:
    def make_logs(self, n=4000, seed=7):
        import random

        rng = random.Random(seed)
        logs = []
        for _ in range(n):
            hot = rng.random() < 0.3
            features = ("feat:hot" if hot else "feat:cold",
                        f"feat:{rng.randrange(5)}")
            ctr = 0.3 if hot else 0.02
            logs.append((features, rng.random() < ctr))
        return logs

    def test_hot_feature_predicts_higher(self):
        from repro.apps.hadoop.adpredictor import train_ctr_model

        model = train_ctr_model(self.make_logs())
        hot = model.predict(("feat:hot", "feat:1"))
        cold = model.predict(("feat:cold", "feat:1"))
        assert hot > 3 * cold

    def test_predictions_are_probabilities(self):
        from repro.apps.hadoop.adpredictor import train_ctr_model

        model = train_ctr_model(self.make_logs())
        for features in (("feat:hot",), ("feat:cold", "feat:0"), ()):
            assert 0.0 <= model.predict(features) <= 1.0

    def test_on_path_training_identical(self):
        """Training through NetAgg combine stages gives the exact same
        model -- the statistic is associative and commutative."""
        from repro.apps.hadoop.adpredictor import train_ctr_model

        logs = self.make_logs(n=1000)
        central = train_ctr_model(logs, n_splits=8)
        on_path = train_ctr_model(logs, n_splits=8, on_path_levels=3)
        assert central.counts == on_path.counts

    def test_unseen_feature_falls_back_to_prior(self):
        from repro.apps.hadoop.adpredictor import CtrModel

        model = CtrModel(counts={"feat:a": (10, 100)})
        assert model.feature_rate("feat:never") == pytest.approx(
            1.0 / 20.0
        )

    def test_calibration_roughly_matches_data(self):
        from repro.apps.hadoop.adpredictor import train_ctr_model

        logs = self.make_logs(n=8000)
        model = train_ctr_model(logs)
        hot_rate = model.feature_rate("feat:hot")
        assert hot_rate == pytest.approx(0.3, abs=0.05)

    def test_top_features(self):
        from repro.apps.hadoop.adpredictor import train_ctr_model

        model = train_ctr_model(self.make_logs())
        top = model.top_features(k=1)
        assert top[0][0] == "feat:hot"

    def test_validation(self):
        from repro.apps.hadoop.adpredictor import CtrModel, train_ctr_model

        with pytest.raises(ValueError):
            train_ctr_model([])
        with pytest.raises(ValueError):
            CtrModel(prior_clicks=0.0)
