"""Unit tests for agg-box overload control: policies, health, shedding."""

import pytest

from repro.aggbox.box import AggBoxRuntime, AppBinding
from repro.aggbox.functions import SumFunction
from repro.aggbox.overload import (
    FAILED,
    FLUSH,
    HEALTHY,
    PRESSURED,
    REJECT_NEW,
    SHEDDING,
    SPILL,
    BoxHealth,
    BoxOverloadError,
    BoxSpillError,
    HealthTransition,
    OverloadPolicy,
    assert_legal_transitions,
)
from repro.wire.serializer import read_float, write_float


def make_box(policy):
    box = AggBoxRuntime("box:test", policy=policy)
    box.register_app(AppBinding(
        app="sum", function=SumFunction(),
        deserialise=lambda b: read_float(b)[0],
        serialise=write_float,
    ))
    return box


class TestOverloadPolicy:
    def test_defaults(self):
        policy = OverloadPolicy()
        assert policy.max_pending == 64
        assert policy.shed == REJECT_NEW
        assert policy.high_pending == 48
        assert policy.low_pending == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            OverloadPolicy(max_pending=0)
        with pytest.raises(ValueError):
            OverloadPolicy(low_watermark=0.8, high_watermark=0.5)
        with pytest.raises(ValueError):
            OverloadPolicy(low_watermark=0.0)
        with pytest.raises(ValueError):
            OverloadPolicy(shed="drop-everything")

    def test_watermarks_never_collapse_to_zero(self):
        policy = OverloadPolicy(max_pending=1, low_watermark=0.1,
                                high_watermark=0.2)
        assert policy.high_pending == 1
        assert policy.low_pending == 0


class TestBoxHealth:
    def test_pressure_cycle(self):
        policy = OverloadPolicy(max_pending=4, low_watermark=0.25,
                                high_watermark=0.75)
        health = BoxHealth(policy)
        assert health.observe(0) == HEALTHY
        assert health.observe(3) == PRESSURED      # >= high watermark (3)
        assert health.observe(4) == SHEDDING       # queue full
        # Hysteresis: shedding persists until below the high watermark.
        assert health.observe(3) == SHEDDING
        assert health.observe(2) == PRESSURED
        assert health.observe(1) == PRESSURED      # >= low watermark (1)
        assert health.observe(0) == HEALTHY
        assert_legal_transitions(health.transitions)

    def test_healthy_jumps_through_pressured_when_full(self):
        health = BoxHealth(OverloadPolicy(max_pending=4))
        health.observe(4)
        assert health.state == SHEDDING
        # The trace records the intermediate pressured hop.
        assert [(t.frm, t.to) for t in health.transitions] == [
            (HEALTHY, PRESSURED), (PRESSURED, SHEDDING)]

    def test_fail_from_any_state_and_recover(self):
        for pending in (0, 3, 4):
            health = BoxHealth(OverloadPolicy(max_pending=4))
            health.observe(pending)
            health.fail(at=1.0)
            assert health.state == FAILED
            assert health.observe(0) == FAILED    # stays down
            health.recover(at=2.0)
            assert health.state == HEALTHY
            assert_legal_transitions(health.transitions)

    def test_illegal_transition_raises(self):
        health = BoxHealth(OverloadPolicy(max_pending=4))
        health.observe(4)
        assert health.state == SHEDDING
        with pytest.raises(RuntimeError):
            health.recover()  # shedding -> healthy skips pressured

    def test_assert_legal_transitions_rejects_gap(self):
        trace = [
            HealthTransition(at=0.0, frm=HEALTHY, to=PRESSURED),
            HealthTransition(at=1.0, frm=SHEDDING, to=PRESSURED),
        ]
        with pytest.raises(AssertionError):
            assert_legal_transitions(trace)

    def test_assert_legal_transitions_rejects_illegal_hop(self):
        trace = [HealthTransition(at=0.0, frm=HEALTHY, to=SHEDDING)]
        with pytest.raises(AssertionError):
            assert_legal_transitions(trace)


class TestRejectNew:
    def test_new_request_refused_when_full(self):
        box = make_box(OverloadPolicy(max_pending=2, shed=REJECT_NEW))
        box.announce("sum", "r1", 3)
        box.submit_partial("sum", "r1", "w0", 1.0)
        box.submit_partial("sum", "r1", "w1", 2.0)
        with pytest.raises(BoxOverloadError) as err:
            box.submit_partial("sum", "r2", "w0", 4.0)
        assert err.value.box_id == "box:test"
        assert err.value.request_id == "r2"
        assert err.value.policy == REJECT_NEW
        assert box.sheds == 1
        # The in-progress request is untouched.
        assert box.pending_count("sum") == 2

    def test_in_progress_request_flushes_instead(self):
        box = make_box(OverloadPolicy(max_pending=2, shed=REJECT_NEW))
        box.announce("sum", "r1", 4)
        box.submit_partial("sum", "r1", "w0", 1.0)
        box.submit_partial("sum", "r1", "w1", 2.0)
        # r1 already holds partials, so its overflow must not be lost:
        # pressure is relieved by a partial flush, then the submit lands.
        assert box.submit_partial("sum", "r1", "w2", 4.0) is None
        deltas = box.drain_shed()
        assert [d.value for d in deltas] == [3.0]
        assert box.flushes == 1
        # Expected dropped by the two flushed partials: one more finishes.
        emitted = box.submit_partial("sum", "r1", "w3", 8.0)
        assert emitted is not None
        assert emitted.value + deltas[0].value == 15.0


class TestSpill:
    def test_overflow_spills(self):
        box = make_box(OverloadPolicy(max_pending=2, shed=SPILL))
        box.announce("sum", "r1", 3)
        box.submit_partial("sum", "r1", "w0", 1.0)
        box.submit_partial("sum", "r1", "w1", 2.0)
        with pytest.raises(BoxSpillError):
            box.submit_partial("sum", "r1", "w2", 4.0)
        assert box.sheds == 1
        # The spilled sender re-targets upstream; the box completes once
        # its expected count is adjusted down.
        emitted = box.adjust_expected("sum", "r1", -1)
        assert emitted is not None and emitted.value == 3.0


class TestFlush:
    def test_overflow_partially_flushes_most_loaded(self):
        box = make_box(OverloadPolicy(max_pending=3, shed=FLUSH))
        box.announce("sum", "r1", 4)
        box.announce("sum", "r2", 2)
        box.submit_partial("sum", "r1", "w0", 1.0)
        box.submit_partial("sum", "r1", "w1", 2.0)
        box.submit_partial("sum", "r2", "w0", 16.0)
        # Overflow: r1 (most loaded) flushes its two partials as a delta.
        assert box.submit_partial("sum", "r2", "w1", 32.0) is not None
        deltas = box.drain_shed()
        assert [d.request_id for d in deltas] == ["r1"]
        assert deltas[0].value == 3.0
        assert deltas[0].sources == ["w0", "w1"]
        # r1 still completes exactly from the remaining partials.
        assert box.submit_partial("sum", "r1", "w2", 4.0) is None
        emitted = box.submit_partial("sum", "r1", "w3", 8.0)
        assert emitted.value == 12.0
        assert deltas[0].value + emitted.value == 15.0

    def test_flushed_sources_are_duplicate_suppressed(self):
        box = make_box(OverloadPolicy(max_pending=2, shed=FLUSH))
        box.announce("sum", "r1", 4)
        box.submit_partial("sum", "r1", "w0", 1.0)
        box.submit_partial("sum", "r1", "w1", 2.0)
        box.submit_partial("sum", "r1", "w2", 4.0)   # triggers the flush
        assert box.last_processed("sum", "r1") == ["w0", "w1"]
        # A failure-recovery resend of a flushed source is dropped.
        assert box.submit_partial("sum", "r1", "w0", 999.0) is None
        # One partial outstanding (w3 never arrives, e.g. its worker
        # degraded to the master): adjusting it away completes the rest.
        emitted = box.adjust_expected("sum", "r1", -1)
        assert emitted is not None
        assert emitted.value == 4.0

    def test_relieve_on_empty_app_returns_none(self):
        box = make_box(OverloadPolicy(max_pending=2, shed=FLUSH))
        assert box.relieve("sum") is None


class TestHeartbeat:
    def test_reports_queue_and_counters(self):
        box = make_box(OverloadPolicy(max_pending=2, shed=FLUSH))
        box.clock = 1.5
        box.announce("sum", "r1", 4)
        box.submit_partial("sum", "r1", "w0", 1.0)
        box.submit_partial("sum", "r1", "w1", 2.0)
        box.submit_partial("sum", "r1", "w2", 4.0)
        beat = box.heartbeat()
        assert beat.box_id == "box:test"
        assert beat.at == 1.5
        # The flush relieved the full queue: one partial buffered again,
        # which sits at the high watermark -> pressured (hysteresis).
        assert beat.state == PRESSURED
        assert beat.pending == 1
        assert beat.max_pending == 2
        assert beat.flushes == 1

    def test_unbounded_box_always_healthy(self):
        box = make_box(None)
        for i in range(100):
            box.submit_partial("sum", "r", f"w{i}", 1.0)
        assert box.health == HEALTHY
        assert box.heartbeat().max_pending == 0
        assert box.health_transitions == []

    def test_mark_failed_and_recovered(self):
        box = make_box(OverloadPolicy(max_pending=2))
        box.mark_failed()
        assert box.health == FAILED
        box.mark_recovered()
        assert box.health == HEALTHY
        assert_legal_transitions(box.health_transitions)
