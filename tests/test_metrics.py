"""Tests for simulation metric helpers."""

import pytest

from repro.netsim.metrics import (
    FctSummary,
    fct_cdf,
    fct_summary,
    link_traffic_cdf,
    median_link_traffic,
    relative_p99,
)
from repro.netsim.network import Link, Network
from repro.netsim.simulator import FlowSim, FlowSpec


def run_sim(sizes, capacity=10.0):
    net = Network([Link("l", capacity)])
    sim = FlowSim(net)
    for i, size in enumerate(sizes):
        sim.add_flow(FlowSpec(f"f{i}", size=size, path=("l",),
                              aggregatable=(i % 2 == 0)))
    return sim.run()


class TestFctSummary:
    def test_fields(self):
        summary = FctSummary.of([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.median == 2.5
        assert summary.maximum == 4.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            FctSummary.of([])

    def test_empty_error_surfaces_filter_context(self):
        result = run_sim([10.0])
        with pytest.raises(ValueError) as err:
            fct_summary(result, kinds=("no-such-kind",))
        message = str(err.value)
        assert "no-such-kind" in message
        assert "simulated flows=1" in message

    def test_empty_ok_degrades_to_nan_row(self):
        import math

        result = run_sim([10.0])
        summary = fct_summary(result, kinds=("no-such-kind",),
                              empty_ok=True)
        assert summary.count == 0
        assert math.isnan(summary.p99) and math.isnan(summary.median)

    def test_from_result_with_filters(self):
        result = run_sim([10.0, 20.0, 30.0])
        assert fct_summary(result).count == 3
        assert fct_summary(result, aggregatable=True).count == 2

    def test_no_match_raises(self):
        result = run_sim([10.0])
        with pytest.raises(ValueError):
            fct_summary(result, kinds=("ghost",))


class TestRelativeP99:
    def test_identity_is_one(self):
        result = run_sim([10.0, 20.0])
        assert relative_p99(result, result) == pytest.approx(1.0)

    def test_faster_network_below_one(self):
        slow = run_sim([10.0, 20.0], capacity=5.0)
        fast = run_sim([10.0, 20.0], capacity=10.0)
        assert relative_p99(fast, slow) == pytest.approx(0.5)

    def test_nan_baseline_raises_with_context(self):
        # A flow that never drained (e.g. a truncated or stalled run)
        # keeps its NaN drain_time, so the baseline p99 is NaN; NaN
        # compares False against 0 and used to slip past the zero
        # guard, silently poisoning every downstream ratio.
        from repro.netsim.simulator import (
            FlowRecord,
            SimulationResult,
        )

        net = Network([Link("l", 10.0)])
        stalled = SimulationResult(
            records={"f0": FlowRecord(
                spec=FlowSpec("f0", size=10.0, path=("l",)),
                drain_time=float("nan"))},
            network=net, end_time=1.0)
        result = run_sim([10.0, 20.0])
        with pytest.raises(ValueError) as err:
            relative_p99(result, stalled)
        message = str(err.value)
        assert "NaN" in message
        assert "simulated flows=1" in message


class TestCdfs:
    def test_fct_cdf_reaches_one(self):
        result = run_sim([10.0, 20.0, 30.0])
        points = fct_cdf(result)
        assert points[-1][1] == pytest.approx(1.0)
        assert len(points) == 3

    def test_link_traffic_cdf(self):
        result = run_sim([10.0, 20.0])
        points = link_traffic_cdf(result)
        assert points == [(30.0, 1.0)]

    def test_median_link_traffic(self):
        result = run_sim([10.0, 20.0])
        assert median_link_traffic(result) == 30.0


class TestSlowdowns:
    def test_uncontended_flow_has_slowdown_one(self):
        from repro.netsim.metrics import slowdowns

        result = run_sim([100.0])
        net = result.network
        (value,) = slowdowns(result, net)
        assert value == pytest.approx(1.0)

    def test_sharing_raises_slowdown(self):
        from repro.netsim.metrics import slowdown_summary

        result = run_sim([100.0, 100.0])
        summary = slowdown_summary(result, result.network)
        assert summary.maximum == pytest.approx(2.0)

    def test_rate_cap_counts_as_bottleneck(self):
        from repro.netsim.metrics import slowdowns
        from repro.netsim.network import Link, Network
        from repro.netsim.simulator import FlowSim, FlowSpec

        net = Network([Link("l", 10.0)])
        sim = FlowSim(net)
        sim.add_flow(FlowSpec("f", size=10.0, path=("l",), rate_cap=2.0))
        result = sim.run()
        (value,) = slowdowns(result, net)
        assert value == pytest.approx(1.0)  # the cap *is* its ideal

    def test_pathless_flows_skipped(self):
        from repro.netsim.metrics import slowdowns
        from repro.netsim.network import Link, Network
        from repro.netsim.simulator import FlowSim, FlowSpec

        net = Network([Link("l", 10.0)])
        sim = FlowSim(net)
        sim.add_flow(FlowSpec("empty", size=5.0))
        sim.add_flow(FlowSpec("real", size=5.0, path=("l",)))
        result = sim.run()
        assert len(slowdowns(result, net)) == 1


class TestTierTraffic:
    def test_tiers_partition_topology_traffic(self):
        from repro.aggregation import NetAggStrategy, deploy_boxes
        from repro.netsim.metrics import tier_traffic
        from repro.topology import ThreeTierParams, three_tier
        from repro.units import MB
        from repro.workload import AggJob, Workload

        topo = three_tier(ThreeTierParams(
            n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2,
            hosts_per_tor=4,
        ))
        deploy_boxes(topo)
        job = AggJob("j", "host:0",
                     (("host:4", MB), ("host:12", MB)), alpha=0.1)
        sim = FlowSim(topo.network)
        sim.add_flows(NetAggStrategy().plan(Workload(jobs=[job]), topo))
        result = sim.run()
        tiers = tier_traffic(result)
        assert tiers["edge"] > 0
        assert tiers["box"] > 0
        assert sum(tiers.values()) == pytest.approx(
            sum(result.link_traffic(wire_only=True).values())
        )

    def test_netagg_reduces_core_tier_bytes(self):
        """The paper's core-relief mechanism, observed directly."""
        from repro.aggregation import (NetAggStrategy, NoAggregationStrategy,
                                       deploy_boxes)
        from repro.netsim.metrics import tier_traffic
        from repro.topology import ThreeTierParams, three_tier
        from repro.units import MB
        from repro.workload import AggJob, Workload

        params = ThreeTierParams(n_pods=2, tors_per_pod=2,
                                 aggrs_per_pod=2, n_cores=2,
                                 hosts_per_tor=4)
        job = AggJob("j", "host:0",
                     tuple((f"host:{h}", MB) for h in (8, 9, 12, 13)),
                     alpha=0.1)

        def core_bytes(strategy, with_boxes):
            topo = three_tier(params)
            if with_boxes:
                deploy_boxes(topo)
            sim = FlowSim(topo.network)
            sim.add_flows(strategy.plan(Workload(jobs=[job]), topo))
            return tier_traffic(sim.run())["aggr-core"]

        plain = core_bytes(NoAggregationStrategy(), False)
        netagg = core_bytes(NetAggStrategy(), True)
        assert netagg < plain / 3
