"""Tests for the discrete-event queue."""

import pytest

from repro.netsim.engine import EventQueue


class TestScheduling:
    def test_events_run_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(2.0, lambda: order.append("b"))
        queue.schedule(1.0, lambda: order.append("a"))
        queue.schedule(3.0, lambda: order.append("c"))
        queue.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_insertion_order(self):
        queue = EventQueue()
        order = []
        for name in "abc":
            queue.schedule(1.0, lambda n=name: order.append(n))
        queue.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        queue = EventQueue()
        seen = []
        queue.schedule(5.0, lambda: seen.append(queue.now))
        queue.run()
        assert seen == [5.0]
        assert queue.now == 5.0

    def test_negative_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        queue = EventQueue(start_time=10.0)
        with pytest.raises(ValueError):
            queue.schedule_at(5.0, lambda: None)

    def test_nested_scheduling(self):
        queue = EventQueue()
        order = []

        def first():
            order.append("first")
            queue.schedule(1.0, lambda: order.append("second"))

        queue.schedule(1.0, first)
        queue.run()
        assert order == ["first", "second"]
        assert queue.now == 2.0


class TestCancel:
    def test_cancelled_event_does_not_fire(self):
        queue = EventQueue()
        fired = []
        token = queue.schedule(1.0, lambda: fired.append(1))
        queue.cancel(token)
        queue.run()
        assert fired == []

    def test_cancel_is_idempotent_after_run(self):
        queue = EventQueue()
        token = queue.schedule(1.0, lambda: None)
        queue.run()
        queue.cancel(token)  # no-op, must not raise
        assert len(queue) == 0

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        token = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        assert len(queue) == 2
        queue.cancel(token)
        assert len(queue) == 1


class TestRun:
    def test_run_until_stops_before_later_events(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: fired.append(1))
        queue.schedule(5.0, lambda: fired.append(5))
        executed = queue.run(until=2.0)
        assert executed == 1
        assert fired == [1]
        assert queue.now == 2.0  # clock advanced to the horizon

    def test_run_max_events(self):
        queue = EventQueue()
        fired = []
        for i in range(5):
            queue.schedule(float(i + 1), lambda i=i: fired.append(i))
        queue.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_on_empty_returns_false(self):
        assert EventQueue().step() is False

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.schedule(3.0, lambda: None)
        assert queue.peek_time() == 3.0
