"""Tests for the discrete-event queue."""

import pytest

from repro.netsim.engine import EventQueue


class TestScheduling:
    def test_events_run_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(2.0, lambda: order.append("b"))
        queue.schedule(1.0, lambda: order.append("a"))
        queue.schedule(3.0, lambda: order.append("c"))
        queue.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_insertion_order(self):
        queue = EventQueue()
        order = []
        for name in "abc":
            queue.schedule(1.0, lambda n=name: order.append(n))
        queue.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        queue = EventQueue()
        seen = []
        queue.schedule(5.0, lambda: seen.append(queue.now))
        queue.run()
        assert seen == [5.0]
        assert queue.now == 5.0

    def test_negative_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        queue = EventQueue(start_time=10.0)
        with pytest.raises(ValueError):
            queue.schedule_at(5.0, lambda: None)

    def test_nested_scheduling(self):
        queue = EventQueue()
        order = []

        def first():
            order.append("first")
            queue.schedule(1.0, lambda: order.append("second"))

        queue.schedule(1.0, first)
        queue.run()
        assert order == ["first", "second"]
        assert queue.now == 2.0


class TestCancel:
    def test_cancelled_event_does_not_fire(self):
        queue = EventQueue()
        fired = []
        token = queue.schedule(1.0, lambda: fired.append(1))
        queue.cancel(token)
        queue.run()
        assert fired == []

    def test_cancel_is_idempotent_after_run(self):
        queue = EventQueue()
        token = queue.schedule(1.0, lambda: None)
        queue.run()
        queue.cancel(token)  # no-op, must not raise
        assert len(queue) == 0

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        token = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        assert len(queue) == 2
        queue.cancel(token)
        assert len(queue) == 1


class TestRun:
    def test_run_until_stops_before_later_events(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: fired.append(1))
        queue.schedule(5.0, lambda: fired.append(5))
        executed = queue.run(until=2.0)
        assert executed == 1
        assert fired == [1]
        assert queue.now == 2.0  # clock advanced to the horizon

    def test_run_max_events(self):
        queue = EventQueue()
        fired = []
        for i in range(5):
            queue.schedule(float(i + 1), lambda i=i: fired.append(i))
        queue.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_on_empty_returns_false(self):
        assert EventQueue().step() is False

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.schedule(3.0, lambda: None)
        assert queue.peek_time() == 3.0


class TestStepBatch:
    def test_coalesces_simultaneous_events(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: fired.append("a"))
        queue.schedule(1.0, lambda: fired.append("b"))
        queue.schedule(2.0, lambda: fired.append("later"))
        executed = queue.step_batch()
        assert executed == 2
        assert fired == ["a", "b"]
        assert queue.now == 1.0

    def test_includes_events_scheduled_at_batch_time(self):
        """A callback that schedules more work *at* the batch timestamp
        sees it drained in the same batch, not deferred."""
        queue = EventQueue()
        fired = []

        def first():
            fired.append("first")
            queue.schedule_at(queue.now, lambda: fired.append("chained"))

        queue.schedule(1.0, first)
        queue.schedule(3.0, lambda: fired.append("later"))
        executed = queue.step_batch()
        assert executed == 2
        assert fired == ["first", "chained"]
        assert queue.now == 1.0

    def test_empty_queue_returns_zero(self):
        queue = EventQueue()
        assert queue.step_batch() == 0

    def test_cancelled_events_do_not_count(self):
        queue = EventQueue()
        fired = []
        token = queue.schedule(1.0, lambda: fired.append("dead"))
        queue.schedule(1.0, lambda: fired.append("live"))
        queue.cancel(token)
        assert queue.step_batch() == 1
        assert fired == ["live"]

    def test_batches_partition_the_timeline(self):
        queue = EventQueue()
        fired = []
        for t, name in [(1.0, "a"), (1.0, "b"), (2.0, "c")]:
            queue.schedule(t, lambda n=name: fired.append(n))
        assert queue.step_batch() == 2
        assert queue.step_batch() == 1
        assert queue.step_batch() == 0
        assert fired == ["a", "b", "c"]
