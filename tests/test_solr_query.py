"""Tests for the search query language (boolean, phrase, distributed)."""

import pytest

from repro.apps.solr import (
    SearchBackend,
    SearchFrontend,
    generate_corpus,
    shard_corpus,
)
from repro.apps.solr.corpus import Document
from repro.apps.solr.index import InvertedIndex
from repro.apps.solr.query import (
    QuerySyntaxError,
    allowed_documents,
    parse_query,
    search_parsed,
)

DOCS = [
    Document(0, "t", "the quick brown fox jumps", "science"),
    Document(1, "t", "the lazy brown dog sleeps", "science"),
    Document(2, "t", "quick dog runs quick", "science"),
    Document(3, "t", "brown fox brown fox brown fox", "science"),
]


def make_index():
    index = InvertedIndex()
    index.add_all(DOCS)
    return index


class TestParseQuery:
    def test_plain_terms(self):
        parsed = parse_query("cat dog")
        assert parsed.optional == ("cat", "dog")
        assert parsed.is_pure_ranking

    def test_required_and_excluded(self):
        parsed = parse_query("+fox -dog brown")
        assert parsed.required == ("fox",)
        assert parsed.excluded == ("dog",)
        assert parsed.optional == ("brown",)
        assert not parsed.is_pure_ranking

    def test_phrase(self):
        parsed = parse_query('"brown fox" quick')
        assert parsed.phrases == (("brown", "fox"),)
        assert parsed.optional == ("quick",)

    def test_single_word_phrase_becomes_required(self):
        parsed = parse_query('"fox" dog')
        assert parsed.required == ("fox",)
        assert parsed.phrases == ()

    def test_unbalanced_quotes_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query('brown "fox')

    def test_dangling_operators_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("+ fox")
        with pytest.raises(QuerySyntaxError):
            parse_query("- fox")

    def test_empty_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("   ")

    def test_case_normalised(self):
        parsed = parse_query("+FOX Brown")
        assert parsed.required == ("fox",)
        assert parsed.optional == ("brown",)


class TestPositionalIndex:
    def test_positions_recorded(self):
        index = make_index()
        # Document text is "<title> <body>": the title token "t" sits at
        # position 0, so body words start at 1.
        assert index.positions("quick", 2) == [1, 4]
        assert index.positions("missing", 2) == []

    def test_docs_with_term(self):
        index = make_index()
        assert index.docs_with_term("brown") == [0, 1, 3]

    def test_phrase_match(self):
        index = make_index()
        assert index.docs_with_phrase(["brown", "fox"]) == [0, 3]
        assert index.docs_with_phrase(["fox", "brown"]) == [3]
        assert index.docs_with_phrase(["quick", "dog"]) == [2]

    def test_phrase_no_match(self):
        index = make_index()
        assert index.docs_with_phrase(["dog", "fox"]) == []
        assert index.docs_with_phrase(["zebra"]) == []


class TestConstraints:
    def test_required_intersects(self):
        index = make_index()
        allowed = allowed_documents(index, parse_query("+quick +dog x"))
        assert allowed == {2}

    def test_excluded_subtracts(self):
        index = make_index()
        allowed = allowed_documents(index, parse_query("brown -dog"))
        assert allowed == {0, 3}

    def test_pure_ranking_unconstrained(self):
        index = make_index()
        assert allowed_documents(index, parse_query("brown fox")) is None

    def test_search_parsed_applies_constraints(self):
        index = make_index()
        results = search_parsed(index, parse_query('+brown -dog fox'))
        ids = [doc for doc, _ in results]
        assert set(ids) == {0, 3}

    def test_phrase_restricts_ranking(self):
        index = make_index()
        results = search_parsed(index, parse_query('"brown fox"'))
        assert {doc for doc, _ in results} == {0, 3}


class TestDistributedAdvancedQueries:
    def test_sharded_equals_centralised_with_operators(self):
        docs = generate_corpus(120, seed=8)
        backends = [SearchBackend(f"b{i}", s)
                    for i, s in enumerate(shard_corpus(docs, 4))]
        frontend = SearchFrontend(backends, k=6)
        central = SearchBackend("all", docs)
        # Build queries from real corpus words.
        words = docs[0].body.split()
        queries = [
            f"+{words[0]} {words[5]}",
            f"{words[1]} -{words[2]}",
            f'"{words[3]} {words[4]}" {words[0]}',
            "+science -history geography",
        ]
        for query in queries:
            distributed = [(r.doc_id, pytest.approx(r.score))
                           for r in frontend.search(query)]
            reference = [(r.doc_id, r.score)
                         for r in central.query(query, k=6)]
            assert distributed == reference

    def test_excluded_term_filters_across_shards(self):
        docs = generate_corpus(60, seed=8)
        backends = [SearchBackend(f"b{i}", s)
                    for i, s in enumerate(shard_corpus(docs, 3))]
        frontend = SearchFrontend(backends, k=20)
        for result in frontend.search("science -history"):
            doc = next(b for b in backends
                       if result.doc_id % 3 == int(b.backend_id[1])
                       ).document(result.doc_id)
            assert "history" not in doc.text.lower().split()
