"""Tests for the trace-analysis layer (repro.obs.analyze) and the
bench regression gate.

Covers: trace loading round-trips (a reloaded export diagnoses
identically to the live tracer), critical-path attribution invariants
(fractions sum to 1), the paper's edge->core bottleneck shift between
`none` and `netagg` under the incast microbenchmark, the `analyze`
CLI, and the `bench --compare` gate (passes on itself, fails on an
injected slowdown).
"""

import copy
import json

import pytest

from repro.cli import SCALES, _trace_platform_companion, main, run_experiment
from repro.obs import METRICS, Tracer, tracing, write_trace
from repro.obs.analyze import (
    CATEGORIES,
    TraceData,
    aggregate_paths,
    diagnose_file,
    diagnose_tracer,
    link_credit,
    link_tier,
    run_timeline,
    series_for_run,
    simulator_paths,
)
from repro.obs.analyze.timeline import LinkSeries


@pytest.fixture(scope="module")
def fig06_tracer():
    """fig06 at quick scale (plus the platform companion) traced live."""
    tracer = Tracer()
    METRICS.reset()
    with tracing(tracer):
        run_experiment("fig06_fct_cdf", SCALES["quick"], 1)
        _trace_platform_companion(SCALES["quick"], 1)
    return tracer


@pytest.fixture(scope="module")
def fig06_diagnosis(fig06_tracer):
    return diagnose_tracer(fig06_tracer)


class TestLinkTier:
    def test_edge_core_box(self):
        assert link_tier("host:12->tor:0") == "edge"
        assert link_tier("tor:2->host:16") == "edge"
        assert link_tier("tor:0->aggr:0:0") == "core"
        assert link_tier("aggr:0:0->core:1") == "core"
        assert link_tier("box:tor:0:0->tor:0") == "box"
        assert link_tier("proc:box:tor:0:0") == "box"


class TestLinkSeries:
    def test_piecewise_constant_integral(self):
        series = LinkSeries("l", [(0.0, 0.5), (2.0, 1.0)], end=4.0)
        # 0.5 over [0,2), 1.0 over [2,4): integral 1 + 2 = 3.
        assert series.integrate(0.0, 4.0) == pytest.approx(3.0)
        assert series.integrate(1.0, 3.0) == pytest.approx(0.5 + 1.0)

    def test_zero_before_first_sample(self):
        series = LinkSeries("l", [(2.0, 1.0)], end=4.0)
        assert series.integrate(0.0, 2.0) == 0.0
        assert series.integrate(0.0, 3.0) == pytest.approx(1.0)


class TestTraceRoundTrip:
    def test_export_reload_diagnoses_identically(self, fig06_tracer,
                                                 tmp_path):
        path = tmp_path / "trace.json"
        write_trace(fig06_tracer, str(path))
        assert diagnose_file(path) == diagnose_tracer(fig06_tracer)

    def test_runs_segmented_by_strategy(self, fig06_tracer):
        trace = TraceData.from_tracer(fig06_tracer)
        strategies = [run.strategy for run in trace.runs()]
        # fig06 sweeps its four strategies, each as one flowsim.run.
        assert strategies == ["rack", "binary", "chain", "netagg"]
        for run in trace.runs():
            assert run.spans, "run segment lost its spans"
            assert any(s.name == "flow" for s in run.spans)


class TestCriticalPath:
    def test_fractions_sum_to_one(self, fig06_diagnosis):
        runs = fig06_diagnosis["runs"]
        assert len(runs) == 4
        for run in runs:
            cp = run["critical_path"]
            assert cp["attributed_seconds"] > 0
            assert sum(cp["fractions"].values()) == pytest.approx(
                1.0, abs=1e-9)
            for per_request in cp["top"]:
                assert sum(per_request["fractions"].values()) \
                    == pytest.approx(1.0, abs=1e-9)

    def test_platform_section_attributed(self, fig06_diagnosis):
        platform = fig06_diagnosis["platform"]
        assert platform["requests"] == 1
        assert platform["attributed_seconds"] > 0
        assert sum(platform["fractions"].values()) == pytest.approx(
            1.0, abs=1e-9)

    def test_chain_covers_every_request(self, fig06_tracer):
        trace = TraceData.from_tracer(fig06_tracer)
        run = trace.runs()[0]
        paths = simulator_paths(run, series_for_run(run))
        jobs = {str(s.tags.get("job", "")) for s in run.spans
                if s.name == "flow" and s.tags.get("job")}
        assert {p.request for p in paths} == jobs
        for path in paths:
            assert path.chain, "critical path lost its blocking chain"
            assert path.total == pytest.approx(
                sum(hop["duration"] for hop in path.chain))

    def test_link_credit_matches_chain_hops(self, fig06_tracer):
        trace = TraceData.from_tracer(fig06_tracer)
        run = trace.runs()[0]
        paths = simulator_paths(run, series_for_run(run))
        credit = link_credit(paths)
        assert credit, "no links credited"
        assert sum(credit.values()) <= sum(p.total for p in paths) + 1e-9

    def test_aggregate_empty(self):
        assert aggregate_paths([]) == {}


class TestBottleneckShift:
    """The paper's story: without aggregation an incast is bound at the
    master's edge downlink; NetAgg moves the bottleneck into the core.
    """

    @pytest.fixture(scope="class")
    def shift_diagnosis(self):
        import repro.aggregation as aggregation
        from repro.experiments.common import simulate

        scale = SCALES["quick"].with_workload(min_workers=24,
                                              random_placement=True)
        tracer = Tracer()
        with tracing(tracer):
            simulate(scale, aggregation.NoAggregationStrategy(), seed=2)
            simulate(scale, aggregation.NetAggStrategy(),
                     deploy=aggregation.deploy_boxes, seed=2)
        return diagnose_tracer(tracer)

    def test_edge_to_core_shift(self, shift_diagnosis):
        by_strategy = {run["strategy"]: run
                       for run in shift_diagnosis["runs"]}
        none = by_strategy["none"]["timeline"]
        netagg = by_strategy["netagg"]["timeline"]
        assert none["dominant_tier"] == "edge"
        assert netagg["dominant_tier"] == "core"
        # The ranked table's top link moves tiers too.
        assert none["links"][0]["tier"] == "edge"
        assert netagg["links"][0]["tier"] == "core"

    def test_core_fraction_rises(self, shift_diagnosis):
        fractions = {run["strategy"]: run["critical_path"]["fractions"]
                     for run in shift_diagnosis["runs"]}
        assert fractions["netagg"]["core-link"] \
            > fractions["none"]["core-link"]
        assert fractions["none"]["edge-link"] \
            > fractions["netagg"]["edge-link"]


class TestTimeline:
    def test_table_ranked_by_credit(self, fig06_tracer):
        trace = TraceData.from_tracer(fig06_tracer)
        run = trace.runs()[0]
        paths = simulator_paths(run, series_for_run(run))
        report = run_timeline(run, credit=link_credit(paths))
        credits = [s.cp_seconds for s in report.links]
        assert credits == sorted(credits, reverse=True)
        assert report.links[0].cp_seconds > 0
        assert report.end_time > 0

    def test_tier_busy_bounded(self, fig06_diagnosis):
        for run in fig06_diagnosis["runs"]:
            for value in run["timeline"]["tier_busy"].values():
                assert 0.0 <= value <= 1.0


class TestAnalyzeCli:
    def test_trace_file_mode(self, fig06_tracer, tmp_path, capsys):
        path = tmp_path / "trace.json"
        write_trace(fig06_tracer, str(path))
        out = tmp_path / "result.json"
        assert main(["analyze", "--trace", str(path),
                     "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "dominant_tier" in printed
        assert "bottlenecks:" in printed
        payload = json.loads(out.read_text())
        assert payload["diagnosis"]["schema"] == 1
        rows = {row["run"]: row for row in payload["rows"]}
        assert "netagg" in rows
        assert sum(rows["netagg"][cat] for cat in CATEGORIES) \
            == pytest.approx(1.0, abs=1e-3)  # rows round to 4 places

    def test_requires_exactly_one_source(self):
        with pytest.raises(SystemExit):
            main(["analyze"])
        with pytest.raises(SystemExit):
            main(["analyze", "--trace", "x.json", "--run", "fig06"])


class TestBenchCompare:
    def _payload(self, **records):
        return {
            "scale": "bench",
            "results": [
                {"experiment": name, "ok": True, **fields}
                for name, fields in records.items()
            ],
        }

    def test_identical_payloads_pass(self):
        from repro.bench import compare_payloads

        payload = self._payload(
            a={"seconds": 1.0, "events": 100},
            b={"seconds": 2.0, "events": 200},
        )
        outcome = compare_payloads(copy.deepcopy(payload), payload)
        assert outcome["regressions"] == []
        assert outcome["compared"] == 2

    def test_uniform_machine_slowdown_tolerated(self):
        from repro.bench import compare_payloads

        baseline = self._payload(
            a={"seconds": 1.0, "events": 100},
            b={"seconds": 2.0, "events": 200},
            c={"seconds": 3.0, "events": 300},
        )
        current = copy.deepcopy(baseline)
        for record in current["results"]:
            record["seconds"] *= 2.0  # slower CI machine, same shape
        outcome = compare_payloads(current, baseline)
        assert outcome["regressions"] == []
        assert outcome["median_ratio"] == pytest.approx(2.0)

    def test_faster_machine_does_not_inflate_rows(self):
        """A median ratio below 1.0 (machine now faster than the
        baseline era) must never count *against* a row: a row at
        parity is not a regression just because the median sped up."""
        from repro.bench import compare_payloads

        baseline = self._payload(
            a={"seconds": 1.0, "events": 100},
            b={"seconds": 2.0, "events": 200},
            c={"seconds": 3.0, "events": 300},
        )
        current = copy.deepcopy(baseline)
        for record in current["results"][1:]:
            record["seconds"] *= 0.7  # b, c sped up; a held steady
        outcome = compare_payloads(current, baseline)
        assert outcome["median_ratio"] == pytest.approx(0.7)
        assert outcome["regressions"] == []

    def test_single_experiment_slowdown_trips(self):
        from repro.bench import compare_payloads

        baseline = self._payload(
            a={"seconds": 1.0, "events": 100},
            b={"seconds": 2.0, "events": 200},
            c={"seconds": 3.0, "events": 300},
        )
        current = copy.deepcopy(baseline)
        current["results"][0]["seconds"] *= 2.0  # only `a` regresses
        outcome = compare_payloads(current, baseline)
        assert any("a: wall time" in r for r in outcome["regressions"])

    def test_counter_growth_trips(self):
        from repro.bench import compare_payloads

        baseline = self._payload(a={"seconds": 1.0, "events": 100,
                                    "solver_calls": 10})
        current = self._payload(a={"seconds": 1.0, "events": 250,
                                   "solver_calls": 10})
        outcome = compare_payloads(current, baseline)
        assert any("events grew 2.50x" in r
                   for r in outcome["regressions"])

    def test_scale_mismatch_trips(self):
        from repro.bench import compare_payloads

        baseline = self._payload(a={"seconds": 1.0, "events": 100})
        current = self._payload(a={"seconds": 1.0, "events": 100})
        current["scale"] = "quick"
        outcome = compare_payloads(current, baseline)
        assert any("scale mismatch" in r for r in outcome["regressions"])

    def test_now_failing_experiment_trips(self):
        from repro.bench import compare_payloads

        baseline = self._payload(a={"seconds": 1.0, "events": 100})
        current = {"scale": "bench", "results": [
            {"experiment": "a", "ok": False, "error": "boom"}]}
        outcome = compare_payloads(current, baseline)
        assert any("now failing" in r for r in outcome["regressions"])

    def test_zero_duration_rows_do_not_poison_median(self):
        """A sub-tick (0.0s) row must not drag the machine-speed median
        to zero and flag every other experiment as a regression."""
        from repro.bench import compare_payloads

        baseline = self._payload(
            a={"seconds": 1.0, "events": 100},
            b={"seconds": 0.0, "events": 10},
        )
        current = self._payload(
            a={"seconds": 1.0, "events": 100},
            b={"seconds": 0.0, "events": 10},
        )
        outcome = compare_payloads(current, baseline)
        assert outcome["regressions"] == []
        assert outcome["median_ratio"] == 1.0

    def test_zero_duration_rows_still_gate_on_counters(self):
        from repro.bench import compare_payloads

        baseline = self._payload(b={"seconds": 0.0, "events": 10})
        current = self._payload(b={"seconds": 0.0, "events": 30})
        outcome = compare_payloads(current, baseline)
        assert any("events grew 3.00x" in r for r in outcome["regressions"])

    def test_events_per_sec_floored_for_subtick_runs(self, monkeypatch):
        """``time_experiment`` never records a 0.0 events/sec rate: a
        clock too coarse to see the run is floored, not zeroed."""
        from repro import bench

        ticks = iter([5.0, 5.0])  # elapsed == 0.0 exactly
        monkeypatch.setattr(bench.time, "perf_counter",
                            lambda: next(ticks))
        record = bench.time_experiment("fig06_fct_cdf",
                                       bench.SCALES["quick"])
        assert record["ok"]
        assert record["seconds"] == 0.0
        assert record["events_per_sec"] > 0.0

    def test_cli_gate_fails_on_injected_regression(self, tmp_path):
        """`bench --compare` exits non-zero against a doctored baseline.

        Halving the committed baseline's event count makes the (fully
        deterministic) current run look like a 2x event regression, so
        the gate must trip; wall time stays inside the single-experiment
        normalisation caveat and cannot mask it.
        """
        baseline = json.loads(
            open("BENCH_netsim.json", encoding="utf-8").read())
        doctored = copy.deepcopy(baseline)
        injected = False
        for record in doctored["results"]:
            if record["experiment"] == "fig06_fct_cdf":
                record["events"] = int(record["events"] / 2)
                injected = True
        assert injected, "fig06_fct_cdf missing from committed baseline"
        path = tmp_path / "doctored.json"
        path.write_text(json.dumps(doctored))
        trajectory = tmp_path / "trajectory.jsonl"
        code = main(["bench", "--compare", str(path),
                     "--only", "fig06_fct_cdf",
                     "--trajectory", str(trajectory)])
        assert code == 1
        entries = [json.loads(line)
                   for line in trajectory.read_text().splitlines()]
        assert len(entries) == 1
        assert any("events grew 2.00x" in r
                   for r in entries[0]["regressions"])
