"""Tests for socket-level interception: the same application code must
work unchanged on the plain and the NetAgg socket factories."""

import pytest

from repro.aggbox.functions import TopKFunction
from repro.aggregation import deploy_boxes
from repro.core import NetAggPlatform
from repro.core.sockets import (
    CONTROL_PORT,
    DATA_PORT,
    NetAggSocketFactory,
    SocketError,
    SocketFactory,
)
from repro.topology import ThreeTierParams, three_tier
from repro.wire.records import (
    SearchResult,
    decode_search_results,
    encode_search_results,
)

SMALL = ThreeTierParams(
    n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2, hosts_per_tor=4
)
MASTER = "host:0"
WORKERS = ["host:1", "host:4", "host:8", "host:12"]


def partials():
    return [
        [SearchResult(i * 10 + j, float(i * 10 + j)) for j in range(4)]
        for i in range(len(WORKERS))
    ]


def run_application(factory):
    """The application: scatter assumed done; workers send partial
    results to the master; the master gathers one response per worker
    and merges.  Identical code for both factories."""
    for host, results in zip(WORKERS, partials()):
        conn = factory.connect(host, MASTER, DATA_PORT)
        conn.send_frame(encode_search_results(results))
        conn.close()
    merger = TopKFunction(k=3)
    gathered = []
    inbox = factory.endpoint(MASTER)
    while True:
        item = inbox.recv(DATA_PORT)
        if item is None:
            break
        _, payload = item
        if payload:
            gathered.append(decode_search_results(payload))
    return merger.merge(gathered), len(gathered)


def make_netagg_factory():
    topo = three_tier(SMALL)
    deploy_boxes(topo)
    platform = NetAggPlatform(topo)
    platform.register_app("solr", TopKFunction(k=3),
                          encode_search_results, decode_search_results)
    return NetAggSocketFactory(platform, "solr")


class TestPlainFactory:
    def test_bytes_arrive(self):
        factory = SocketFactory()
        result, n_responses = run_application(factory)
        assert n_responses == len(WORKERS)
        assert [r.doc_id for r in result] == [33, 32, 31]

    def test_chunked_send_reassembles(self):
        factory = SocketFactory()
        conn = factory.connect("host:1", MASTER, DATA_PORT)
        from repro.wire.framing import frame

        data = frame(b"hello world")
        for i in range(len(data)):
            conn.send(data[i:i + 1])
        src, payload = factory.endpoint(MASTER).recv(DATA_PORT)
        assert (src, payload) == ("host:1", b"hello world")

    def test_send_after_close_rejected(self):
        factory = SocketFactory()
        conn = factory.connect("host:1", MASTER, DATA_PORT)
        conn.close()
        with pytest.raises(SocketError):
            conn.send(b"x")


class TestNetAggFactory:
    def test_same_application_same_result(self):
        plain_result, _ = run_application(SocketFactory())
        factory = make_netagg_factory()
        factory.register_request("req-1", MASTER, WORKERS)
        netagg_result, n_responses = run_application(factory)
        assert netagg_result == plain_result
        # The master still sees one response per worker; all but one
        # are the shim's emulated empty results.
        assert n_responses == 1

    def test_master_gets_one_frame_per_worker(self):
        factory = make_netagg_factory()
        factory.register_request("req-1", MASTER, WORKERS)
        for host, results in zip(WORKERS, partials()):
            conn = factory.connect(host, MASTER, DATA_PORT)
            conn.send_frame(encode_search_results(results))
        inbox = factory.endpoint(MASTER)
        frames = []
        while True:
            item = inbox.recv(DATA_PORT)
            if item is None:
                break
            frames.append(item)
        assert len(frames) == len(WORKERS)
        non_empty = [p for _, p in frames if p]
        assert len(non_empty) == 1

    def test_control_traffic_passes_through(self):
        factory = make_netagg_factory()
        factory.register_request("req-1", MASTER, WORKERS)
        conn = factory.connect("host:1", MASTER, CONTROL_PORT)
        conn.send_frame(b"heartbeat")
        src, payload = factory.endpoint(MASTER).recv(CONTROL_PORT)
        assert (src, payload) == ("host:1", b"heartbeat")
        assert factory.endpoint(MASTER).recv(DATA_PORT) is None

    def test_unregistered_traffic_passes_through(self):
        factory = make_netagg_factory()
        conn = factory.connect("host:1", "host:2", DATA_PORT)
        conn.send_frame(b"not a partial result")
        src, payload = factory.endpoint("host:2").recv(DATA_PORT)
        assert payload == b"not a partial result"

    def test_duplicate_request_rejected(self):
        factory = make_netagg_factory()
        factory.register_request("req-1", MASTER, WORKERS)
        with pytest.raises(SocketError):
            factory.register_request("req-1", MASTER, WORKERS)

    def test_boxes_actually_processed_traffic(self):
        factory = make_netagg_factory()
        factory.register_request("req-1", MASTER, WORKERS)
        run_application(factory)
        platform = factory._platform
        touched = sum(
            1 for info in platform.topology.all_boxes()
            if platform.box_runtime(info.box_id).last_processed(
                "solr", "req-1@t0")
        )
        assert touched >= 1
