"""Tests for the binary wire format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wire import (
    ChunkReassembler,
    KeyValue,
    SearchResult,
    WireError,
    decode_kv_stream,
    decode_search_results,
    encode_kv_stream,
    encode_search_results,
    frame,
    unframe_all,
)
from repro.wire.serializer import (
    read_bytes,
    read_float,
    read_signed,
    read_string,
    read_varint,
    write_bytes,
    write_float,
    write_signed,
    write_string,
    write_varint,
)


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**60])
    def test_roundtrip(self, value):
        encoded = write_varint(value)
        decoded, offset = read_varint(encoded)
        assert decoded == value
        assert offset == len(encoded)

    def test_single_byte_for_small_values(self):
        assert len(write_varint(127)) == 1
        assert len(write_varint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(WireError):
            write_varint(-1)

    def test_truncated_raises(self):
        encoded = write_varint(300)
        with pytest.raises(WireError):
            read_varint(encoded[:1])

    def test_empty_raises(self):
        with pytest.raises(WireError):
            read_varint(b"")

    @given(st.integers(0, 2**63 - 1))
    @settings(max_examples=200)
    def test_roundtrip_property(self, value):
        decoded, _ = read_varint(write_varint(value))
        assert decoded == value


class TestSigned:
    @given(st.integers(-(2**62), 2**62))
    @settings(max_examples=200)
    def test_roundtrip(self, value):
        decoded, _ = read_signed(write_signed(value))
        assert decoded == value

    def test_zigzag_compactness(self):
        # Small magnitudes (either sign) stay in one byte.
        assert len(write_signed(-1)) == 1
        assert len(write_signed(63)) == 1


class TestScalars:
    @given(st.text(max_size=200))
    @settings(max_examples=100)
    def test_string_roundtrip(self, text):
        decoded, _ = read_string(write_string(text))
        assert decoded == text

    @given(st.binary(max_size=200))
    @settings(max_examples=100)
    def test_bytes_roundtrip(self, blob):
        decoded, _ = read_bytes(write_bytes(blob))
        assert decoded == blob

    @given(st.floats(allow_nan=False, allow_infinity=False))
    @settings(max_examples=100)
    def test_float_roundtrip(self, value):
        decoded, _ = read_float(write_float(value))
        assert decoded == value

    def test_truncated_string(self):
        encoded = write_string("hello")
        with pytest.raises(WireError):
            read_string(encoded[:-1])

    def test_invalid_utf8(self):
        bad = write_bytes(b"\xff\xfe")
        with pytest.raises(WireError):
            read_string(bad)


class TestFraming:
    def test_frame_roundtrip(self):
        frames = unframe_all(frame(b"abc") + frame(b"") + frame(b"xy"))
        assert frames == [b"abc", b"", b"xy"]

    def test_trailing_junk_rejected(self):
        with pytest.raises(WireError):
            unframe_all(frame(b"abc") + b"\x05ab")

    @given(st.lists(st.binary(max_size=100), max_size=10),
           st.integers(1, 17))
    @settings(max_examples=100)
    def test_reassembly_any_chunking(self, payloads, chunk_size):
        stream = b"".join(frame(p) for p in payloads)
        reassembler = ChunkReassembler()
        out = []
        for i in range(0, len(stream), chunk_size):
            out.extend(reassembler.feed(stream[i:i + chunk_size]))
        assert out == payloads
        reassembler.finish()  # must end on a boundary

    def test_finish_mid_frame_raises(self):
        reassembler = ChunkReassembler()
        reassembler.feed(frame(b"abcdef")[:3])
        with pytest.raises(WireError):
            reassembler.finish()

    def test_counters(self):
        reassembler = ChunkReassembler()
        data = frame(b"abc")
        reassembler.feed(data[:2])
        assert reassembler.frames_emitted == 0
        assert reassembler.pending_bytes == 2
        reassembler.feed(data[2:])
        assert reassembler.frames_emitted == 1
        assert reassembler.bytes_consumed == len(data)
        assert reassembler.pending_bytes == 0


class TestRecords:
    def test_kv_roundtrip(self):
        pairs = [KeyValue("alpha", 3), KeyValue("beta", 2**40)]
        assert decode_kv_stream(encode_kv_stream(pairs)) == pairs

    def test_kv_empty(self):
        assert decode_kv_stream(encode_kv_stream([])) == []

    def test_kv_trailing_bytes_rejected(self):
        encoded = encode_kv_stream([KeyValue("a", 1)]) + b"\x00"
        with pytest.raises(WireError):
            decode_kv_stream(encoded)

    def test_search_result_roundtrip(self):
        results = [
            SearchResult(1, 0.5, "snippet one"),
            SearchResult(99, -2.25, ""),
        ]
        assert decode_search_results(encode_search_results(results)) == results

    @given(st.lists(
        st.tuples(st.text(max_size=20), st.integers(0, 2**40)),
        max_size=30,
    ))
    @settings(max_examples=100)
    def test_kv_roundtrip_property(self, rows):
        pairs = [KeyValue(k, v) for k, v in rows]
        assert decode_kv_stream(encode_kv_stream(pairs)) == pairs

    def test_kv_ordering(self):
        assert KeyValue("a", 1) < KeyValue("b", 0)
