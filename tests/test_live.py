"""Tests for the live telemetry plane (``repro.obs.live``).

Pins the tentpole loop end to end -- observe -> alert -> act:

- windowed series: ring bounds, window/tumbling/rate queries,
  monotonic-time enforcement, the shared ``ewma_step`` primitive;
- SLO monitor: exact burn-rate arithmetic, edge-triggered episodes,
  re-arming after recovery;
- flight recorder: bounded rings, debounced validator-clean Perfetto
  dumps, byte-identical dumps under identical seeds and fault
  schedules;
- exposition: ``render_prometheus`` output passes
  ``validate_exposition``; the validator rejects malformed documents;
- serving integration: a forced SLO burn fires an alert that shows up
  in ``GET /metrics``, dumps a clean trace, and is consumed by an
  optimizer ``Auditor`` tick; ``/metrics`` and ``/v1/stats`` stay
  bounded under a 10k-request load;
- sweep interaction: live telemetry is per-process -- only
  ``netsim.*`` counters merge back, so windows never double-count.
"""

import asyncio
import json
import multiprocessing

import pytest

from repro.core.optimizer.audit import Auditor
from repro.experiments.sweep import run_parallel
from repro.obs import METRICS
from repro.obs.export import validate_trace_events
from repro.obs.live import (
    FlightRecorder,
    LiveTelemetry,
    SloMonitor,
    SloObjective,
    TimeSeriesStore,
    WindowedSeries,
    ewma_step,
    render_prometheus,
    validate_exposition,
)
from repro.obs.metrics import Histogram
from repro.serve import AggregationService, ServeConfig, TenantPolicy

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

#: A tight objective so a handful of bad events lights it up.
TIGHT = SloObjective(key="", target=0.9, fast_window=1.0,
                     slow_window=2.0, fast_burn=5.0, slow_burn=1.0)


class TestEwmaStep:
    def test_none_seeds_with_sample(self):
        assert ewma_step(None, 3.5, 0.2) == 3.5

    def test_converges_to_constant_stream(self):
        value = None
        for _ in range(200):
            value = ewma_step(value, 10.0, 0.3)
        assert value == pytest.approx(10.0)

    def test_single_step_arithmetic(self):
        assert ewma_step(1.0, 2.0, 0.25) == pytest.approx(1.25)


class TestWindowedSeries:
    def test_window_stats_over_in_window_points(self):
        series = WindowedSeries("lat")
        for i in range(10):
            series.observe(i * 1.0, float(i))
        stats = series.window(at=9.0, window=4.0)
        # Half-open (5.0, 9.0]: values 6..9.
        assert stats.count == 4
        assert stats.minimum == 6.0 and stats.maximum == 9.0
        assert stats.mean == pytest.approx(7.5)

    def test_tumbling_uses_last_completed_partition(self):
        series = WindowedSeries("lat")
        for i in range(10):
            series.observe(i * 0.1, float(i))
        stats = series.tumbling(at=0.95, window=0.5)
        # Last completed partition is (0.0, 0.5]: points at 0.1..0.5.
        assert stats.end == pytest.approx(0.5)
        assert stats.count == 5

    def test_backwards_time_rejected(self):
        series = WindowedSeries("lat")
        series.observe(1.0, 0.0)
        with pytest.raises(ValueError, match="precedes"):
            series.observe(0.5, 0.0)

    def test_ring_stays_bounded(self):
        series = WindowedSeries("lat", maxlen=64)
        for i in range(10_000):
            series.observe(i * 0.001, 1.0)
        assert len(series) <= 2 * 64

    def test_counter_delta_and_rate(self):
        series = WindowedSeries("req", kind="counter")
        for i in range(1, 11):
            series.observe(i * 1.0, float(i * 3))  # +3 per second
        assert series.delta(10.0, 4.0) == pytest.approx(12.0)
        assert series.rate(10.0, 4.0) == pytest.approx(3.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            WindowedSeries("x", kind="sparkline")


class TestTimeSeriesStore:
    def test_kind_conflict_raises(self):
        store = TimeSeriesStore()
        store.observe("x", 0.0, 1.0)
        with pytest.raises(TypeError, match="gauge"):
            store.count("x", 1.0)

    def test_same_instant_counts_fold_into_one_point(self):
        store = TimeSeriesStore()
        for _ in range(5):
            store.count("req", 1.0)
        series = store.series("req", kind="counter")
        assert len(series) == 1
        assert series.value_at(1.0) == 5.0

    def test_missing_series_queries_are_empty(self):
        store = TimeSeriesStore()
        assert store.window("ghost", 1.0, 1.0).count == 0
        assert store.rate("ghost", 1.0, 1.0) == 0.0
        assert store.delta("ghost", 1.0, 1.0) == 0.0


class TestSloMonitor:
    def test_burn_rate_arithmetic(self):
        monitor = SloMonitor(template=TIGHT)
        # 5 good + 5 bad in the last second: bad fraction 0.5 over a
        # 0.1 budget is a 5x burn, exactly the fast threshold.
        for i in range(5):
            monitor.record("t", 0.5 + i * 0.01, True)
            monitor.record("t", 0.6 + i * 0.01, False)
        assert monitor.burn_rate("t", 1.0, 1.0) == pytest.approx(5.0)

    def test_no_events_is_not_a_burn(self):
        monitor = SloMonitor(template=TIGHT)
        monitor.objective("t")
        assert monitor.burn_rate("t", 1.0, 1.0) == 0.0
        assert monitor.evaluate(1.0) == []

    def test_edge_triggered_episode_and_rearm(self):
        monitor = SloMonitor(template=TIGHT)
        # Sustained burn: one alert, not one per evaluation.
        for i in range(20):
            monitor.record("t", i * 0.05, False)
            monitor.evaluate(i * 0.05)
        assert len(monitor.alerts) == 1
        assert monitor.is_burning("t")
        # Recovery: both windows drain (all events age out), the
        # episode clears...
        monitor.evaluate(10.0)
        assert not monitor.is_burning("t")
        # ...and a second burn is a second episode.
        for i in range(20):
            monitor.record("t", 20.0 + i * 0.05, False)
            monitor.evaluate(20.0 + i * 0.05)
        assert len(monitor.alerts) == 2

    def test_alert_carries_windows_and_counts(self):
        monitor = SloMonitor(template=TIGHT)
        for i in range(10):
            monitor.record("t", i * 0.05, False)
        (alert,) = monitor.evaluate(0.45)
        assert alert.key == "t"
        assert alert.bad == 10 and alert.good == 0
        assert alert.budget == pytest.approx(0.1)
        assert alert.to_dict()["fast_burn"] == pytest.approx(
            alert.fast_burn)

    def test_template_substitutes_key(self):
        monitor = SloMonitor(template=TIGHT)
        obj = monitor.objective("tenant-7")
        assert obj.key == "tenant-7"
        assert obj.target == TIGHT.target

    def test_objective_validation(self):
        with pytest.raises(ValueError, match="target"):
            SloObjective(key="x", target=1.5)
        with pytest.raises(ValueError, match="fast_window"):
            SloObjective(key="x", fast_window=5.0, slow_window=1.0)


class TestHistogramPercentile:
    def test_single_observation_is_exact(self):
        hist = Histogram("h")
        hist.observe(0.123)
        assert hist.percentile(50.0) == pytest.approx(0.123)

    def test_extremes_clamp_to_min_max(self):
        hist = Histogram("h")
        for v in (0.001, 0.5, 42.0):
            hist.observe(v)
        assert hist.percentile(0.0) == pytest.approx(0.001)
        assert hist.percentile(100.0) == pytest.approx(42.0)

    def test_relative_error_within_bucket_width(self):
        hist = Histogram("h")
        values = [i * 0.001 for i in range(1, 1001)]
        for v in values:
            hist.observe(v)
        for p, exact in ((50.0, 0.5), (99.0, 0.99)):
            estimate = hist.percentile(p)
            assert abs(estimate - exact) / exact < 0.13

    def test_empty_and_reset(self):
        hist = Histogram("h")
        assert hist.percentile(99.0) == 0.0
        hist.observe(1.0)
        hist.reset()
        assert hist.count == 0
        assert hist.percentile(50.0) == 0.0


class TestFlightRecorder:
    def _fill(self, recorder, n=100, start=0.0):
        for i in range(n):
            at = start + i * 0.01
            span = recorder.begin("work", at, layer="test", index=i)
            recorder.end(span, at + 0.005)
            recorder.instant("tick", at, layer="test")

    def test_ring_stays_bounded(self):
        recorder = FlightRecorder(capacity=32)
        self._fill(recorder, n=5_000)
        assert recorder.record_count() <= 3 * 32

    def test_dump_is_validator_clean_and_tagged(self):
        recorder = FlightRecorder(capacity=64)
        self._fill(recorder)
        payload = recorder.dump("breaker.open", 1.0, tenant="t1")
        assert payload is not None
        assert validate_trace_events(payload["traceEvents"]) == []
        assert payload["trigger"]["kind"] == "breaker.open"
        assert payload["trigger"]["tenant"] == "t1"
        assert recorder.last_dump() is payload

    def test_debounce_per_trigger_kind(self):
        recorder = FlightRecorder(capacity=64, min_interval=1.0)
        self._fill(recorder)
        assert recorder.dump("storm", 1.0) is not None
        assert recorder.dump("storm", 1.5) is None       # inside interval
        assert recorder.dump("other", 1.5) is not None   # distinct kind
        assert recorder.dump("storm", 2.5) is not None   # re-armed

    def test_dumps_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=64, min_interval=0.0)
        self._fill(recorder)
        for i in range(50):
            recorder.dump("k", float(i))
        assert len(recorder.dumps) <= 8

    def test_dump_writes_valid_file(self, tmp_path):
        recorder = FlightRecorder(capacity=64)
        self._fill(recorder)
        path = tmp_path / "dump.json"
        recorder.dump("alert", 1.0, path=path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert validate_trace_events(payload["traceEvents"]) == []

    def test_capacity_floor(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=2)


class TestExposition:
    def test_registry_render_validates_clean(self):
        METRICS.counter("serve.test_expo").inc(3)
        METRICS.histogram("serve.test_expo_lat").observe(0.25)
        text = render_prometheus()
        assert validate_exposition(text) == []
        assert "repro_serve_test_expo_total 3" in text
        assert 'repro_serve_test_expo_lat{quantile="0.99"}' in text

    def test_telemetry_lines_validate_clean(self):
        telemetry = LiveTelemetry(template=TIGHT)
        for i in range(20):
            telemetry.observe_request("tenant-1", i * 0.01, 200, 0.01,
                                      slo=0.25)
        text = render_prometheus(telemetry=telemetry)
        assert validate_exposition(text) == []
        assert 'repro_window_p99_seconds{key="tenant-1"}' in text
        assert 'repro_slo_burn_rate{key="tenant-1",window="fast"}' in text

    def test_validator_rejects_malformed_documents(self):
        assert validate_exposition("untyped_sample 1\n")  # no # TYPE
        bad_value = "# TYPE m gauge\nm not-a-number\n"
        assert any("bad value" in p
                   for p in validate_exposition(bad_value))
        bad_label = "# TYPE m gauge\nm{label='x'} 1\n"
        assert any("label" in p for p in validate_exposition(bad_label))
        bad_type = "# TYPE m sparkline\nm 1\n"
        assert any("unknown metric type" in p
                   for p in validate_exposition(bad_type))


def _force_burn(telemetry, tenant="t1", n=30, start=0.0):
    """Feed ``n`` SLO-violating requests; returns fired alerts."""
    fired = []
    for i in range(n):
        fired.extend(telemetry.observe_request(
            tenant, start + i * 0.01, 200, latency=1.0, slo=0.25))
    return fired


class TestLiveTelemetry:
    def test_forced_burn_fires_one_alert(self):
        telemetry = LiveTelemetry(template=TIGHT)
        fired = _force_burn(telemetry)
        assert len(fired) == 1
        assert fired[0].key == "t1"
        assert telemetry.monitor.is_burning("t1")

    def test_client_faults_do_not_count_against_slo(self):
        telemetry = LiveTelemetry(template=TIGHT)
        for i in range(30):
            telemetry.observe_request("t1", i * 0.01, 429, 1.0, slo=0.25)
        assert telemetry.monitor.alerts == []
        # The traffic still shows in the request-rate series.
        assert telemetry.windowed("t1")["count"] == 30

    def test_alert_dumps_validator_clean_trace(self):
        telemetry = LiveTelemetry(template=TIGHT)
        _force_burn(telemetry)
        payload = telemetry.recorder.last_dump()
        assert payload is not None
        assert payload["trigger"]["kind"] == "slo_burn:t1"
        assert validate_trace_events(payload["traceEvents"]) == []

    def test_alert_appears_in_exposition(self):
        telemetry = LiveTelemetry(template=TIGHT)
        _force_burn(telemetry)
        text = render_prometheus(telemetry=telemetry)
        assert validate_exposition(text) == []
        assert 'repro_slo_burning{key="t1"} 1' in text

    def test_auditor_consumes_drained_alerts(self):
        telemetry = LiveTelemetry(template=TIGHT)
        _force_burn(telemetry)
        alerted_before = METRICS.counter(
            "optimizer.audits.alerted").value
        auditor = Auditor(health=lambda: {},
                          alerts=telemetry.drain_alerts)
        report = auditor.audit(at=1.0)
        assert len(report.alerts) == 1
        assert report.alerts[0].key == "t1"
        assert METRICS.counter("optimizer.audits.alerted").value \
            == alerted_before + 1
        # The drain is a cursor: a second tick sees nothing new.
        assert auditor.audit(at=2.0).alerts == ()

    def test_trigger_dumps_with_kind(self, tmp_path):
        telemetry = LiveTelemetry(template=TIGHT,
                                  dump_dir=str(tmp_path))
        telemetry.recorder.instant("warm", 0.1, layer="test")
        payload = telemetry.trigger("partition.detected", 0.5,
                                    tenant="t1", scopes="rack:r0")
        assert payload["trigger"]["kind"] == "partition.detected"
        dumps = list(tmp_path.glob("flightrec-*.json"))
        assert len(dumps) == 1
        on_disk = json.loads(dumps[0].read_text(encoding="utf-8"))
        assert on_disk["trigger"]["scopes"] == "rack:r0"


def _query(tenant="t1", rid="r1", seed=42, **extra):
    return {"op": "query", "tenant": tenant, "id": rid,
            "payload_seed": seed, "workers": 2,
            "results_per_worker": 2, **extra}


class TestServeIntegration:
    def _burning_service(self):
        """An SLO no request can meet: every 200 is a bad SLO event."""
        return AggregationService(ServeConfig(
            default_policy=TenantPolicy(slo=1e-9),
            slo_fast_window=0.5, slo_slow_window=1.0,
        ))

    def test_forced_burn_through_the_service(self):
        service = self._burning_service()
        for i in range(40):
            service.handle(_query(rid=f"r{i}", seed=i))
        telemetry = service.telemetry
        assert len(telemetry.monitor.alerts) >= 1
        # (a) the alert is visible in /metrics...
        text = service.metrics_exposition()
        assert validate_exposition(text) == []
        assert 'repro_slo_burning{key="t1"} 1' in text
        # (b) ...the flight recorder dumped a validator-clean trace
        # tagged with the burn...
        payload = telemetry.recorder.last_dump()
        assert payload["trigger"]["kind"].startswith("slo_burn:")
        assert validate_trace_events(payload["traceEvents"]) == []
        # (c) ...and an optimizer audit tick consumes it.
        auditor = Auditor(health=lambda: {},
                          alerts=telemetry.drain_alerts)
        assert auditor.audit(at=service.clock).alerts

    def test_healthy_traffic_stays_quiet(self):
        service = AggregationService()
        for i in range(40):
            service.handle(_query(rid=f"r{i}", seed=i))
        assert service.telemetry.monitor.alerts == []
        text = service.metrics_exposition()
        assert validate_exposition(text) == []
        assert 'repro_slo_burning{key="t1"} 0' in text

    def test_telemetry_off_still_serves(self):
        service = AggregationService(ServeConfig(telemetry=False))
        assert service.telemetry is None
        assert service.handle(_query())["status"] == 200
        assert validate_exposition(service.metrics_exposition()) == []

    def test_http_metrics_endpoint_is_text(self):
        from repro.serve import HttpFrontend

        frontend = HttpFrontend(AggregationService())
        status, payload = asyncio.run(
            frontend.dispatch("GET", "/metrics", b""))
        assert status == 200
        assert isinstance(payload, str)
        assert validate_exposition(payload) == []

    def test_stats_endpoint_carries_windows_and_alerts(self):
        from repro.serve import HttpFrontend

        service = self._burning_service()
        frontend = HttpFrontend(service)
        for i in range(40):
            service.handle(_query(rid=f"r{i}", seed=i))
        status, payload = asyncio.run(
            frontend.dispatch("GET", "/v1/stats", b""))
        assert status == 200
        window = payload["tenants"]["t1"]["window"]
        assert window["count"] > 0 and window["p99"] > 0
        assert payload["alerts"]["total"] >= 1
        assert payload["alerts"]["recent"][-1]["key"] == "t1"


class TestBoundedUnderLoad:
    def test_rings_and_endpoints_bounded_after_10k_requests(self):
        """The hardening pin: after 10k requests the recorder ring, the
        windowed store and both GET endpoints are the same size they
        were after 1k -- nothing grows with trace length."""
        capacity = 256
        service = AggregationService(ServeConfig(
            recorder_capacity=capacity))
        telemetry = service.telemetry

        def sizes():
            store = telemetry.store
            retained = sum(len(store.get(name))
                           for name in store.names())
            return (telemetry.recorder.record_count(), retained,
                    len(service.metrics_exposition().splitlines()))

        for i in range(1_000):
            service.handle(_query(tenant=f"t{i % 4}", rid=f"a{i}",
                                  seed=i))
        warm = sizes()
        for i in range(9_000):
            service.handle(_query(tenant=f"t{i % 4}", rid=f"b{i}",
                                  seed=i))
        records, retained, lines = sizes()
        assert records <= 3 * capacity
        assert retained <= warm[1] + 8 * 2 * telemetry.store.maxlen
        # The exposition gained at most a few registry families (new
        # status counters), never per-request lines.
        assert lines <= warm[2] + 20
        status, payload = asyncio.run(
            __import__("repro.serve.http", fromlist=["HttpFrontend"])
            .HttpFrontend(service).dispatch("GET", "/v1/stats", b""))
        assert status == 200
        assert payload["requests"] == 10_000


class TestFlightRecorderDeterminism:
    def _dump_bytes(self):
        from repro.faults import FaultEvent, FaultSchedule

        boxes = sorted(info.box_id for info in
                       AggregationService().platform.topology.all_boxes())
        schedule = FaultSchedule([
            FaultEvent(0.005, "box-crash", boxes[0]),
            FaultEvent(0.200, "box-recover", boxes[0]),
        ])
        service = AggregationService(ServeConfig(
            default_policy=TenantPolicy(slo=1e-9),
            slo_fast_window=0.5, slo_slow_window=1.0,
            faults=schedule,
        ))
        for i in range(40):
            service.handle(_query(rid=f"r{i}", seed=i))
        payload = service.telemetry.recorder.last_dump()
        assert payload is not None
        return json.dumps(payload, sort_keys=True)

    def test_same_seed_and_faults_dump_identical_bytes(self):
        assert self._dump_bytes() == self._dump_bytes()


def _live_probe(x):
    """Sweep child: bump a mergeable counter and run a private burn."""
    METRICS.counter("netsim.test_live_probe").inc()
    telemetry = LiveTelemetry(template=TIGHT)
    _force_burn(telemetry)
    return len(telemetry.monitor.alerts)


class TestSweepInteraction:
    @pytest.mark.skipif(not HAVE_FORK, reason="no fork start method")
    def test_live_telemetry_is_per_process(self):
        """Only ``netsim.*`` counters merge back from sweep children;
        the children's live alerts/series stay in the children -- no
        double-counting into parent windows (sweep.py contract)."""
        netsim_before = METRICS.counter("netsim.test_live_probe").value
        alerts_before = METRICS.counter("obs.slo.alerts").value
        results = run_parallel(_live_probe, [1, 2, 3, 4], processes=2)
        assert results == [1, 1, 1, 1]
        assert METRICS.counter("netsim.test_live_probe").value \
            == netsim_before + 4
        assert METRICS.counter("obs.slo.alerts").value == alerts_before

    def test_serial_run_keeps_counter_totals(self):
        netsim_before = METRICS.counter("netsim.test_live_probe").value
        results = run_parallel(_live_probe, [1, 2], processes=1)
        assert results == [1, 1]
        assert METRICS.counter("netsim.test_live_probe").value \
            == netsim_before + 2


class TestWatchDashboard:
    STATS = {
        "clock": 12.5,
        "requests": 120,
        "tenants": {
            "t1": {"requests": 100, "ok": 80, "r206": 2, "r429": 10,
                   "r503": 8,
                   "window": {"p99": 0.31, "goodput_rps": 40.0,
                              "rate_rps": 50.0, "burn_fast": 6.2,
                              "burn_slow": 1.4, "burning": 1.0}},
            "t2": {"requests": 20, "ok": 20, "r206": 0, "r429": 0,
                   "r503": 0,
                   "window": {"p99": 0.05, "goodput_rps": 10.0,
                              "rate_rps": 10.0, "burn_fast": 0.0,
                              "burn_slow": 0.0, "burning": 0.0}},
        },
        "alerts": {"total": 3, "burning": ["t1"],
                   "recent": [{"at": 11.8, "key": "t1",
                               "fast_burn": 6.2, "slow_burn": 1.4}]},
    }
    METRICS_TEXT = ("# TYPE repro_serve_requests_total counter\n"
                    "repro_serve_requests_total 120\n")

    def test_renders_tenants_alerts_and_hot_metrics(self):
        from repro.serve import render_dashboard

        board = render_dashboard(self.STATS, self.METRICS_TEXT)
        assert "clock     12.500s" in board
        t1_line = next(line for line in board.splitlines()
                       if line.startswith("t1"))
        assert "BURN" in t1_line
        t2_line = next(line for line in board.splitlines()
                       if line.startswith("t2"))
        assert t2_line.rstrip().endswith("ok")
        assert "alerts: 3 fired, burning: t1" in board
        assert "repro_serve_requests_total" in board

    def test_empty_stats_render(self):
        from repro.serve import render_dashboard

        board = render_dashboard({"clock": 0.0, "requests": 0,
                                  "tenants": {}})
        assert "(no traffic yet)" in board

    def test_hottest_tenant_ranks_first(self):
        from repro.serve.watch import _tenant_rows

        rows = _tenant_rows(self.STATS, top=10)
        assert [name for name, _ in rows] == ["t1", "t2"]


class TestFigBurnrateHelpers:
    def test_breach_time_finds_budget_exhaustion(self):
        from repro.experiments.fig_burnrate import breach_time

        events = [(i * 0.1, True) for i in range(20)]
        events += [(2.0 + i * 0.1, False) for i in range(10)]
        # After 20 good, the k-th bad makes the fraction k/(20+k);
        # k=3 is the first past a 0.1 budget -> its event time.
        assert breach_time(events, budget=0.1, warmup=20) \
            == pytest.approx(2.2)

    def test_breach_time_never_without_exhaustion(self):
        from repro.experiments.fig_burnrate import breach_time

        events = [(i * 0.1, True) for i in range(50)]
        assert breach_time(events, budget=0.1) == -1.0

    def test_first_alert_on_synthetic_streams(self):
        from repro.experiments.fig_burnrate import (
            OBJECTIVE,
            first_alert,
        )

        bad = [(i * 0.01, False) for i in range(40)]
        at, count = first_alert(bad, OBJECTIVE)
        assert at >= 0.0 and count >= 1
        good = [(i * 0.01, True) for i in range(40)]
        assert first_alert(good, OBJECTIVE) == (-1.0, 0)

    def test_quick_scale_row_shape(self):
        from repro.experiments import QUICK, load

        result = load("fig_burnrate").run(scale=QUICK, loads=(1.0,))
        (row,) = result.rows
        assert set(row) == {"load", "alerts", "alert_at", "breach_at",
                            "lead_s", "viol_frac"}
        assert row["viol_frac"] >= 0.0
