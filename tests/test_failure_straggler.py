"""Tests for failure recovery and straggler mitigation."""

import pytest

from repro.aggregation import deploy_boxes
from repro.core.failure import FailureDetector, rewire_failed_box
from repro.core.straggler import StragglerMonitor, StragglerPolicy
from repro.core.tree import TreeBuilder
from repro.topology import ThreeTierParams, three_tier

SMALL = ThreeTierParams(
    n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2, hosts_per_tor=4
)
WORKERS = ["host:4", "host:5", "host:8", "host:12"]


def make_tree():
    topo = three_tier(SMALL)
    deploy_boxes(topo)
    return TreeBuilder(topo).build("job", "host:0", WORKERS)


class TestRewireFailedBox:
    def test_children_reparented(self):
        tree = make_tree()
        # Fail a mid-tree box: pick a non-root box with children.
        candidates = [
            b for b, v in tree.boxes.items() if v.parent and v.children
        ]
        failed = candidates[0]
        parent = tree.boxes[failed].parent
        children = list(tree.boxes[failed].children)
        rewired = rewire_failed_box(tree, failed)
        assert failed not in rewired.boxes
        for child in children:
            assert rewired.boxes[child].parent == parent
            assert child in rewired.boxes[parent].children

    def test_direct_workers_move_to_parent(self):
        tree = make_tree()
        entry = tree.worker_entry[0]  # host:4's ToR box
        parent = tree.boxes[entry].parent
        rewired = rewire_failed_box(tree, entry)
        assert rewired.worker_entry[0] == parent
        assert 0 in rewired.boxes[parent].direct_workers

    def test_root_failure_sends_children_to_master(self):
        tree = make_tree()
        (root,) = tree.roots()
        children = list(tree.boxes[root].children)
        rewired = rewire_failed_box(tree, root)
        for child in children:
            assert rewired.boxes[child].parent is None
        assert set(rewired.roots()) == set(children)

    def test_lane_joined_through_failed_box(self):
        tree = make_tree()
        candidates = [
            b for b, v in tree.boxes.items() if v.parent and v.children
        ]
        failed = candidates[0]
        child = tree.boxes[failed].children[0]
        old_lane = tree.boxes[child].lane_to_parent
        rewired = rewire_failed_box(tree, failed)
        new_lane = rewired.boxes[child].lane_to_parent
        assert len(new_lane) > len(old_lane)
        assert new_lane[: len(old_lane)] == old_lane

    def test_unknown_box_raises(self):
        tree = make_tree()
        with pytest.raises(KeyError):
            rewire_failed_box(tree, "box:ghost")

    def test_original_tree_untouched(self):
        tree = make_tree()
        (root,) = tree.roots()
        rewire_failed_box(tree, root)
        assert root in tree.boxes

    def test_cascading_failures(self):
        tree = make_tree()
        survivors = sorted(tree.boxes)
        while survivors:
            tree = rewire_failed_box(tree, survivors[0])
            survivors = sorted(tree.boxes)
        # Everything failed: all workers go direct.
        assert tree.direct_workers() == [0, 1, 2, 3]

    def test_second_victim_inherited_children_lanes_compose(self):
        """B2 dies after adopting B1's children: lanes join twice."""
        tree = make_tree()
        first = [b for b, v in tree.boxes.items() if v.parent and v.children]
        b1 = first[0]
        b2 = tree.boxes[b1].parent
        inherited = list(tree.boxes[b1].children)
        assert inherited, "test needs a victim with children"
        original_lanes = {
            c: tree.boxes[c].lane_to_parent for c in inherited
        }
        once = rewire_failed_box(tree, b1)
        for child in inherited:
            assert once.boxes[child].parent == b2
        grandparent = once.boxes[b2].parent
        twice = rewire_failed_box(once, b2)
        for child in inherited:
            vertex = twice.boxes[child]
            # Inherited child re-parented again, one level further up.
            assert vertex.parent == grandparent
            lane = vertex.lane_to_parent
            original = original_lanes[child]
            # The doubly-joined lane extends the original lane prefix
            # through both dead boxes' lane remainders, no duplicated
            # junction switches.
            assert lane[: len(original)] == original
            assert len(lane) > len(original)
            assert len(lane) == len(set(lane)), f"lane repeats: {lane}"
            if grandparent is not None:
                assert child in twice.boxes[grandparent].children

    def test_root_failure_direct_workers_fall_back_to_master(self):
        tree = make_tree()
        (root,) = tree.roots()
        # Give the root a directly-attached worker by failing the
        # worker's entry chain up to the root first.
        entry = tree.worker_entry[0]
        while entry is not None and entry != root:
            tree = rewire_failed_box(tree, entry)
            entry = tree.worker_entry[0]
        assert tree.worker_entry[0] == root
        assert 0 in tree.boxes[root].direct_workers
        rewired = rewire_failed_box(tree, root)
        # The root's direct workers ship straight to the master now.
        assert rewired.worker_entry[0] is None
        assert 0 in rewired.direct_workers()
        lane = rewired.worker_lane[0]
        assert len(lane) == len(set(lane)), f"lane repeats: {lane}"


class TestFailureDetector:
    def test_healthy_box_not_missing(self):
        detector = FailureDetector(timeout=1.0)
        detector.watch("b1", now=0.0)
        detector.heartbeat("b1", now=0.9)
        assert detector.missing(now=1.5) == []

    def test_overdue_box_reported(self):
        detector = FailureDetector(timeout=1.0)
        detector.watch("b1", now=0.0)
        assert detector.missing(now=1.5) == ["b1"]

    def test_heartbeat_resets_clock(self):
        detector = FailureDetector(timeout=1.0)
        detector.watch("b1", now=0.0)
        detector.heartbeat("b1", now=2.0)
        assert detector.missing(now=2.5) == []

    def test_unwatched_heartbeat_raises(self):
        detector = FailureDetector()
        with pytest.raises(KeyError):
            detector.heartbeat("ghost", now=0.0)

    def test_forget(self):
        detector = FailureDetector(timeout=1.0)
        detector.watch("b1")
        detector.forget("b1")
        assert detector.missing(now=10.0) == []
        assert detector.watched() == set()

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            FailureDetector(timeout=0.0)

    def test_clock_regression_clamped(self):
        """A rewound sender clock must not age a live box (skewed
        heartbeats keep the newest timestamp seen)."""
        detector = FailureDetector(timeout=1.0)
        detector.watch("b1", now=0.0)
        detector.heartbeat("b1", now=5.0)
        detector.heartbeat("b1", now=2.0)  # skewed/rewound clock
        assert detector.missing(now=5.5) == []
        # The clamp keeps 5.0, so the box times out from there.
        assert detector.missing(now=6.5) == ["b1"]

    def test_missing_boundary_is_strict(self):
        """Exactly `timeout` seconds since the heartbeat is still alive;
        missing() requires strictly more (`>`, not `>=`)."""
        detector = FailureDetector(timeout=1.0)
        detector.watch("b1", now=0.0)
        assert detector.missing(now=1.0) == []
        assert detector.missing(now=1.0 + 1e-9) == ["b1"]


class TestStragglerMonitor:
    def test_fast_box_is_ok(self):
        monitor = StragglerMonitor(StragglerPolicy(latency_threshold=1.0))
        assert monitor.observe("b1", "r1", latency=0.5) == "ok"
        assert not monitor.is_redirected("b1", "r1")

    def test_slow_box_redirected_per_request(self):
        monitor = StragglerMonitor(StragglerPolicy(latency_threshold=1.0,
                                                   repeat_limit=3))
        assert monitor.observe("b1", "r1", latency=2.0) == "redirect"
        assert monitor.is_redirected("b1", "r1")
        assert not monitor.is_redirected("b1", "r2")

    def test_repeat_offender_fails(self):
        monitor = StragglerMonitor(StragglerPolicy(latency_threshold=1.0,
                                                   repeat_limit=3))
        assert monitor.observe("b1", "r1", latency=2.0) == "redirect"
        assert monitor.observe("b1", "r2", latency=2.0) == "redirect"
        assert monitor.observe("b1", "r3", latency=2.0) == "fail"
        assert monitor.permanently_failed() == ["b1"]

    def test_same_request_does_not_accumulate(self):
        """Slowness must repeat across *different* requests (§3.1)."""
        monitor = StragglerMonitor(StragglerPolicy(latency_threshold=1.0,
                                                   repeat_limit=2))
        monitor.observe("b1", "r1", latency=2.0)
        assert monitor.observe("b1", "r1", latency=3.0) != "fail"
        assert monitor.slow_request_count("b1") == 1

    def test_reset_box(self):
        monitor = StragglerMonitor(StragglerPolicy(repeat_limit=1))
        monitor.observe("b1", "r1", latency=2.0)
        monitor.reset_box("b1")
        assert monitor.permanently_failed() == []
        assert not monitor.is_redirected("b1", "r1")

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            StragglerPolicy(latency_threshold=0.0)
        with pytest.raises(ValueError):
            StragglerPolicy(repeat_limit=0)

    def test_negative_latency_rejected(self):
        monitor = StragglerMonitor()
        with pytest.raises(ValueError):
            monitor.observe("b1", "r1", latency=-1.0)
