"""Cross-validation: the event-driven simulator must agree with the
brute-force time-stepped reference within step granularity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.network import Link, Network
from repro.netsim.reference import simulate_reference
from repro.netsim.simulator import FlowSim, FlowSpec

STEP = 0.01


def make_network():
    return Network([
        Link("l1", 10.0), Link("l2", 7.0), Link("l3", 13.0),
    ])


def run_both(specs):
    network = make_network()
    sim = FlowSim(network)
    sim.add_flows(specs)
    exact = sim.run()
    reference = simulate_reference(make_network(), specs, time_step=STEP)
    return exact, reference


def assert_agree(specs, tolerance=None):
    exact, reference = run_both(specs)
    # Each completion shifts subsequent admissions, so errors can chain:
    # allow one step per flow plus one.
    tolerance = tolerance or (STEP * (len(specs) + 1))
    for spec in specs:
        record = exact.records[spec.flow_id]
        ref_admitted, ref_drained = reference[spec.flow_id]
        assert record.drain_time == pytest.approx(
            ref_drained, abs=tolerance
        ), spec.flow_id
        assert record.admitted_time == pytest.approx(
            ref_admitted, abs=tolerance
        ), spec.flow_id


class TestCrossValidation:
    def test_single_flow(self):
        assert_agree([FlowSpec("f", size=25.0, path=("l1",))])

    def test_shared_link(self):
        assert_agree([
            FlowSpec("a", size=10.0, path=("l1",)),
            FlowSpec("b", size=30.0, path=("l1",)),
        ])

    def test_multi_bottleneck(self):
        assert_agree([
            FlowSpec("a", size=20.0, path=("l1",)),
            FlowSpec("b", size=20.0, path=("l1", "l2")),
            FlowSpec("c", size=20.0, path=("l2", "l3")),
        ])

    def test_staggered_starts(self):
        assert_agree([
            FlowSpec("a", size=30.0, path=("l1",)),
            FlowSpec("b", size=10.0, path=("l1",), start_time=1.5),
            FlowSpec("c", size=10.0, path=("l2",), start_time=3.0),
        ])

    def test_dependency_chain(self):
        assert_agree([
            FlowSpec("leaf", size=20.0, path=("l1",)),
            FlowSpec("mid", size=5.0, path=("l2",), children=("leaf",)),
            FlowSpec("root", size=5.0, path=("l3",), children=("mid",)),
        ])

    def test_rate_caps(self):
        assert_agree([
            FlowSpec("capped", size=10.0, path=("l1",), rate_cap=2.0),
            FlowSpec("free", size=10.0, path=("l1",)),
        ])

    def test_zero_size_and_empty_path(self):
        assert_agree([
            FlowSpec("instant", size=0.0, path=("l1",), start_time=1.0),
            FlowSpec("pathless", size=5.0),
            FlowSpec("real", size=10.0, path=("l1",),
                     children=("instant",)),
        ])

    @given(st.lists(
        st.tuples(
            st.floats(1.0, 40.0),            # size
            st.floats(0.0, 2.0),             # start
            st.sampled_from([("l1",), ("l2",), ("l1", "l2"),
                             ("l2", "l3"), ("l1", "l3")]),
        ),
        min_size=1, max_size=8,
    ))
    @settings(max_examples=40, deadline=None)
    def test_random_flow_sets_agree(self, rows):
        specs = [
            FlowSpec(f"f{i}", size=size, start_time=start, path=path)
            for i, (size, start, path) in enumerate(rows)
        ]
        assert_agree(specs)

    @given(st.lists(st.floats(1.0, 30.0), min_size=2, max_size=6),
           st.integers(0, 4))
    @settings(max_examples=30, deadline=None)
    def test_random_dependency_trees_agree(self, sizes, shape):
        specs = [FlowSpec("f0", size=sizes[0], path=("l1",))]
        for i, size in enumerate(sizes[1:], start=1):
            parent = (i - 1) // 2 if shape % 2 else max(0, i - 1)
            specs.append(FlowSpec(
                f"f{i}", size=size,
                path=("l2",) if i % 2 else ("l3",),
                children=(f"f{parent}",),
            ))
        assert_agree(specs)

    def test_reference_validates_step(self):
        with pytest.raises(ValueError):
            simulate_reference(make_network(), [], time_step=0.0)
