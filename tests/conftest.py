"""Shared test configuration: hypothesis profiles.

``print_blob=True`` makes every hypothesis failure print a
``@reproduce_failure`` blob, so chaos-suite counterexamples found in CI
can be replayed locally verbatim.  The ``ci`` profile additionally caps
example counts via ``CHAOS_EXAMPLES`` (see test_chaos_invariants.py).
Select with ``HYPOTHESIS_PROFILE=ci``; the default (``dev``) keeps
hypothesis's stock example counts.
"""

import os

from hypothesis import settings

settings.register_profile("dev", deadline=None, print_blob=True)
settings.register_profile("ci", deadline=None, print_blob=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
