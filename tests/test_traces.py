"""Tests for workload trace serialisation and the trace CLI."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import cli
from repro.topology import ThreeTierParams, three_tier
from repro.workload import AggJob, BackgroundFlow, Workload, WorkloadParams
from repro.workload.synthetic import generate_workload
from repro.workload.traces import (
    TraceError,
    dump_workload,
    load_workload,
    parse_workload,
    save_workload,
    workload_summary,
)

SMALL = ThreeTierParams(
    n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2, hosts_per_tor=8
)


def sample_workload():
    return Workload(
        jobs=[
            AggJob("j0", "host:0", (("host:1", 100.0), ("host:2", 50.0)),
                   alpha=0.1, start_time=0.5, n_trees=2,
                   worker_delays=(0.0, 0.25)),
        ],
        background=[
            BackgroundFlow("bg:0", "host:3", "host:4", 999.0,
                           start_time=1.5),
        ],
    )


class TestRoundTrip:
    def test_dump_parse_roundtrip(self):
        workload = sample_workload()
        restored = parse_workload(dump_workload(workload))
        assert restored.jobs == workload.jobs
        assert restored.background == workload.background

    def test_save_load_roundtrip(self, tmp_path):
        workload = sample_workload()
        path = tmp_path / "trace.jsonl"
        save_workload(workload, path)
        restored = load_workload(path)
        assert restored.jobs == workload.jobs
        assert restored.background == workload.background

    def test_generated_workload_roundtrips(self):
        topo = three_tier(SMALL)
        workload = generate_workload(topo, WorkloadParams(n_flows=80),
                                     seed=3)
        restored = parse_workload(dump_workload(workload))
        assert restored.jobs == workload.jobs
        assert restored.background == workload.background

    def test_empty_workload(self):
        assert dump_workload(Workload()) == ""
        restored = parse_workload("")
        assert not restored.jobs and not restored.background

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, seed):
        topo = three_tier(SMALL)
        workload = generate_workload(topo, WorkloadParams(n_flows=30),
                                     seed=seed)
        restored = parse_workload(dump_workload(workload))
        assert restored.jobs == workload.jobs


class TestParsingErrors:
    def test_invalid_json(self):
        with pytest.raises(TraceError):
            parse_workload("{not json")

    def test_unknown_type(self):
        with pytest.raises(TraceError):
            parse_workload('{"type": "mystery"}')

    def test_bad_job_record(self):
        with pytest.raises(TraceError):
            parse_workload('{"type": "job", "job_id": "j"}')

    def test_bad_flow_record(self):
        with pytest.raises(TraceError):
            parse_workload('{"type": "background", "flow_id": "f"}')

    def test_comments_and_blanks_skipped(self):
        workload = parse_workload(
            "# a comment\n\n"
            '{"type": "background", "flow_id": "f", "src": "a", '
            '"dst": "b", "size": 1.0}\n'
        )
        assert len(workload.background) == 1


class TestSummary:
    def test_summary_fields(self):
        summary = workload_summary(sample_workload())
        assert summary["jobs"] == 1
        assert summary["background_flows"] == 1
        assert summary["worker_flows"] == 2
        assert summary["total_bytes"] == pytest.approx(1149.0)
        assert 0.0 < summary["aggregatable_byte_fraction"] < 1.0

    def test_empty_summary(self):
        summary = workload_summary(Workload())
        assert summary["jobs"] == 0
        assert summary["total_bytes"] == 0


class TestTraceCli:
    def test_generate_and_inspect(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert cli.main(["trace", "generate", "--scale", "quick",
                         "--seed", "5", "--out", str(out)]) == 0
        assert out.exists()
        capsys.readouterr()
        assert cli.main(["trace", "inspect", str(out)]) == 0
        text = capsys.readouterr().out
        assert "jobs" in text
        assert "aggregatable_byte_fraction" in text

    def test_generated_trace_replays_through_strategy(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        cli.main(["trace", "generate", "--scale", "quick",
                  "--out", str(out)])
        from repro.aggregation import NetAggStrategy, deploy_boxes
        from repro.experiments import QUICK
        from repro.netsim import FlowSim

        workload = load_workload(out)
        topo = three_tier(QUICK.topo)
        deploy_boxes(topo)
        sim = FlowSim(topo.network)
        sim.add_flows(NetAggStrategy().plan(workload, topo))
        result = sim.run()
        assert result.records


class TestTraceCliErrors:
    def test_inspect_missing_file(self):
        with pytest.raises(FileNotFoundError):
            cli.main(["trace", "inspect", "/nonexistent/trace.jsonl"])

    def test_inspect_malformed_trace(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "mystery"}\n')
        with pytest.raises(TraceError):
            cli.main(["trace", "inspect", str(bad)])
