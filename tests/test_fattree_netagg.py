"""NetAgg on a fat-tree: lanes must respect the restricted core wiring
(aggregation switch j of every pod reaches only core group j)."""

from repro.aggregation import NetAggStrategy, RackLevelStrategy
from repro.core.tree import TreeBuilder
from repro.netsim import FlowSim
from repro.netsim.metrics import fct_summary
from repro.netsim.routing import EcmpRouter
from repro.topology import fat_tree
from repro.topology.base import AGGR, CORE, TOR
from repro.units import Gbps, MB
from repro.workload import AggJob


def make_topo(k=4):
    topo = fat_tree(k)
    for tier in (TOR, AGGR, CORE):
        for switch in topo.switches(tier):
            topo.attach_aggbox(switch, link_rate=Gbps(10.0),
                               proc_rate=Gbps(9.2))
    return topo


def cross_pod_job(topo, n_workers=6):
    hosts = sorted(topo.hosts(), key=lambda h: int(h.split(":")[1]))
    master = hosts[0]
    step = max(1, len(hosts) // (n_workers + 1))
    workers = tuple(
        (hosts[(i + 1) * step], 2 * MB) for i in range(n_workers)
    )
    return AggJob("ft-job", master, workers, alpha=0.1, n_trees=2)


class TestFatTreeLanes:
    def test_lanes_use_existing_links(self):
        """Every planned path must reference real links -- FlowSim
        validates on add, so a bad lane raises KeyError."""
        topo = make_topo()
        job = cross_pod_job(topo)
        specs = NetAggStrategy().plan_job(job, topo, EcmpRouter())
        sim = FlowSim(topo.network)
        sim.add_flows(specs)  # KeyError here would mean an invalid lane
        result = sim.run()
        assert len(result.records) == len(specs)

    def test_many_jobs_many_lanes(self):
        topo = make_topo()
        builder = TreeBuilder(topo)
        hosts = sorted(topo.hosts())
        cores_used = set()
        for i in range(16):
            tree = builder.build(f"job{i}", hosts[0], hosts[8:12],
                                 tree_index=0)
            for vertex in tree.boxes.values():
                switch = vertex.info.switch_id
                if switch.startswith("core:"):
                    cores_used.add(switch)
        assert len(cores_used) > 1  # lanes spread over the core groups

    def test_core_adjacent_to_both_pod_aggrs(self):
        topo = make_topo()
        builder = TreeBuilder(topo)
        for i in range(8):
            key = f"job{i}"
            core = builder.core(key, 0)
            for pod in (0, 1, 2, 3):
                aggr = builder.pod_aggr(key, 0, pod)
                assert core in topo.neighbors(aggr), (
                    f"{core} not wired to {aggr}"
                )

    def test_trees_round_robin_positions(self):
        topo = make_topo()
        builder = TreeBuilder(topo)
        positions = {
            builder.pod_aggr("job", t, 0) for t in range(2)
        }
        assert len(positions) == 2  # k=4: two aggr positions per pod

    def test_netagg_beats_rack_on_fat_tree(self):
        topo_rack = fat_tree(4)
        job = cross_pod_job(topo_rack, n_workers=6)
        rack_specs = RackLevelStrategy().plan_job(job, topo_rack,
                                                  EcmpRouter())
        sim = FlowSim(topo_rack.network)
        sim.add_flows(rack_specs)
        rack_result = sim.run()

        topo_na = make_topo()
        na_specs = NetAggStrategy().plan_job(job, topo_na, EcmpRouter())
        sim = FlowSim(topo_na.network)
        sim.add_flows(na_specs)
        na_result = sim.run()
        assert fct_summary(na_result).p99 <= fct_summary(rack_result).p99
