"""Integration tests: the NetAgg platform executing real requests."""

import pytest

from repro.aggbox.functions import SumFunction, TopKFunction
from repro.aggregation import deploy_boxes
from repro.core import NetAggPlatform
from repro.topology import ThreeTierParams, three_tier
from repro.topology.base import CORE
from repro.wire.records import (
    KeyValue,
    SearchResult,
    decode_kv_stream,
    decode_search_results,
    encode_kv_stream,
    encode_search_results,
)
from repro.wire.serializer import read_float, write_float

SMALL = ThreeTierParams(
    n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2, hosts_per_tor=4
)


def make_platform(tiers=None, register_solr=True):
    topo = three_tier(SMALL)
    if tiers is None:
        deploy_boxes(topo)
    elif tiers:
        deploy_boxes(topo, tiers=tiers)
    platform = NetAggPlatform(topo)
    if register_solr:
        platform.register_app(
            "solr", TopKFunction(k=3),
            encode_search_results, decode_search_results,
        )
    return platform


def solr_partials(hosts=("host:1", "host:4", "host:8", "host:12")):
    return [
        (host, [SearchResult(i * 10 + j, float(i * 10 + j))
                for j in range(5)])
        for i, host in enumerate(hosts)
    ]


class TestRegistration:
    def test_app_registered_everywhere(self):
        platform = make_platform()
        assert platform.apps() == ["solr"]
        for info in platform.topology.all_boxes():
            assert platform.box_runtime(info.box_id).apps() == ["solr"]

    def test_duplicate_app_rejected(self):
        platform = make_platform()
        with pytest.raises(ValueError):
            platform.register_app("solr", TopKFunction(),
                                  encode_search_results,
                                  decode_search_results)

    def test_unknown_app_rejected(self):
        platform = make_platform()
        with pytest.raises(KeyError):
            platform.execute_request("ghost", "r", "host:0",
                                     solr_partials())


class TestOnlineRequests:
    def test_result_matches_centralised_merge(self):
        platform = make_platform()
        partials = solr_partials()
        outcome = platform.execute_request("solr", "r1", "host:0", partials)
        expected = TopKFunction(k=3).merge([p for _, p in partials])
        assert outcome.value == expected

    def test_empty_response_emulation(self):
        platform = make_platform()
        outcome = platform.execute_request("solr", "r1", "host:0",
                                           solr_partials())
        assert len(outcome.worker_responses) == 4
        assert sum(1 for _, v in outcome.worker_responses
                   if v is not None) == 1

    def test_boxes_participate(self):
        platform = make_platform()
        outcome = platform.execute_request("solr", "r1", "host:0",
                                           solr_partials())
        assert outcome.boxes_used
        assert outcome.bytes_into_boxes > 0

    def test_multiple_trees_choose_one_per_request(self):
        platform = make_platform()
        trees_seen = set()
        for i in range(8):
            outcome = platform.execute_request(
                "solr", f"r{i}", "host:0", solr_partials(), n_trees=2
            )
            assert len(outcome.trees_used) == 1
            trees_seen.add(outcome.trees_used[0])
        assert trees_seen == {0, 1}

    def test_no_boxes_direct_path_still_correct(self):
        platform = make_platform(tiers=())
        partials = solr_partials()
        outcome = platform.execute_request("solr", "r1", "host:0", partials)
        expected = TopKFunction(k=3).merge([p for _, p in partials])
        assert outcome.value == expected
        assert outcome.boxes_used == []

    def test_partial_deployment_correct(self):
        platform = make_platform(tiers=(CORE,))
        partials = solr_partials()
        outcome = platform.execute_request("solr", "r1", "host:0", partials)
        expected = TopKFunction(k=3).merge([p for _, p in partials])
        assert outcome.value == expected


class TestFailures:
    def test_failed_box_routed_around(self):
        platform = make_platform()
        partials = solr_partials()
        healthy = platform.execute_request("solr", "r0", "host:0", partials)
        for box_id in healthy.boxes_used:
            failing = make_platform()
            failing.fail_box(box_id)
            outcome = failing.execute_request("solr", "r0", "host:0",
                                              partials)
            assert outcome.value == healthy.value
            assert box_id not in outcome.boxes_used

    def test_all_boxes_failed_still_correct(self):
        platform = make_platform()
        for info in platform.topology.all_boxes():
            platform.fail_box(info.box_id)
        partials = solr_partials()
        outcome = platform.execute_request("solr", "r1", "host:0", partials)
        expected = TopKFunction(k=3).merge([p for _, p in partials])
        assert outcome.value == expected
        assert outcome.boxes_used == []

    def test_recover_box(self):
        platform = make_platform()
        box = platform.topology.all_boxes()[0].box_id
        platform.fail_box(box)
        assert box in platform.failed_boxes()
        platform.recover_box(box)
        assert box not in platform.failed_boxes()

    def test_unknown_box_rejected(self):
        platform = make_platform()
        with pytest.raises(KeyError):
            platform.fail_box("box:ghost")


class TestBatchJobs:
    def make_hadoop_platform(self):
        from repro.aggbox.functions import CombinerFunction

        platform = make_platform(register_solr=False)
        platform.register_app(
            "hadoop", CombinerFunction(),
            encode_kv_stream, decode_kv_stream,
        )
        return platform

    def test_batch_wordcount_matches_flat(self):
        platform = self.make_hadoop_platform()
        worker_items = [
            ("host:1", [("apple", KeyValue("apple", 1)),
                        ("pear", KeyValue("pear", 2))]),
            ("host:4", [("apple", KeyValue("apple", 3))]),
            ("host:8", [("plum", KeyValue("plum", 5))]),
        ]
        outcome = platform.execute_batch(
            "hadoop", "job1", "host:0", worker_items, n_trees=2,
        )
        assert outcome.value == [
            KeyValue("apple", 4), KeyValue("pear", 2), KeyValue("plum", 5),
        ]
        assert sorted(outcome.trees_used) == [0, 1]

    def test_batch_uses_both_trees_boxes(self):
        platform = self.make_hadoop_platform()
        worker_items = [
            ("host:1", [(f"k{i}", KeyValue(f"k{i}", i)) for i in range(20)]),
            ("host:12", [(f"k{i}", KeyValue(f"k{i}", 1)) for i in range(20)]),
        ]
        outcome = platform.execute_batch(
            "hadoop", "job2", "host:0", worker_items, n_trees=2,
        )
        assert len(outcome.value) == 20
        assert outcome.bytes_into_boxes > 0


class TestScalarApp:
    def test_sum_through_platform(self):
        platform = make_platform(register_solr=False)
        platform.register_app(
            "sum", SumFunction(),
            write_float, lambda b: read_float(b)[0],
        )
        partials = [(f"host:{h}", float(h)) for h in (1, 4, 8, 12)]
        outcome = platform.execute_request("sum", "r", "host:0", partials)
        assert outcome.value == pytest.approx(25.0)
