"""Tests for the unified observability layer (repro.obs).

Covers the tracer's structural invariants (strict-LIFO nesting,
well-formed parentage -- including property-based checks over random
begin/end programs), registry semantics, the trace_event exporter, the
CLI ``trace`` command (spans from all three layers), and -- the purity
contract -- that a disabled tracer leaves experiment output
byte-identical.
"""

import math
import subprocess
import sys

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import (
    METRICS,
    MetricsRegistry,
    NULL_TRACER,
    Tracer,
    get_tracer,
    set_tracer,
    to_trace_events,
    tracing,
    validate_trace_events,
    validate_trace_file,
    write_trace,
)


class TestTracerSpans:
    def test_parentage_from_nesting(self):
        t = Tracer()
        outer = t.begin("outer", 0.0, layer="netsim")
        inner = t.begin("inner", 1.0, layer="netsim")
        t.end(inner, 2.0)
        t.end(outer, 3.0)
        spans = {s.span_id: s for s in t.spans}
        assert spans[outer].parent_id is None
        assert spans[inner].parent_id == outer
        assert spans[inner].duration == 1.0
        assert t.finished()

    def test_unbalanced_end_rejected(self):
        t = Tracer()
        outer = t.begin("outer", 0.0)
        t.begin("inner", 1.0)
        with pytest.raises(RuntimeError, match="unbalanced"):
            t.end(outer, 2.0)

    def test_end_without_begin_rejected(self):
        with pytest.raises(RuntimeError):
            Tracer().end(1, 0.0)

    def test_end_before_start_rejected(self):
        t = Tracer()
        sid = t.begin("s", 5.0)
        with pytest.raises(ValueError):
            t.end(sid, 4.0)

    def test_span_context_manager_closes_on_error(self):
        t = Tracer()
        clock = iter([0.0, 1.0, 2.0, 3.0])
        with pytest.raises(RuntimeError, match="boom"):
            with t.span("work", lambda: next(clock)):
                raise RuntimeError("boom")
        assert t.finished()
        assert t.spans[0].end == 1.0

    def test_clear_refuses_open_spans(self):
        t = Tracer()
        t.begin("open", 0.0)
        with pytest.raises(RuntimeError):
            t.clear()

    def test_layers_sorted_distinct(self):
        t = Tracer()
        sid = t.begin("a", 0.0, layer="platform")
        t.end(sid, 1.0)
        t.instant("x", 0.5, layer="aggbox")
        t.sample("y", 0.5, 1.0, layer="netsim")
        assert t.layers() == ["aggbox", "netsim", "platform"]

    @given(st.lists(st.tuples(st.booleans(),
                              st.floats(0, 100, allow_nan=False)),
                    max_size=60))
    def test_random_programs_keep_nesting_well_formed(self, program):
        """Any legal begin/end interleaving yields a well-formed tree:
        children nest inside parents, ids are unique, LIFO holds."""
        t = Tracer()
        clock = 0.0
        for is_begin, dt in program:
            clock += dt
            if is_begin:
                t.begin(f"s{t._next_id}", clock)
            elif t.open_spans():
                t.end(t.open_spans()[-1].span_id, clock)
        while t.open_spans():
            clock += 1.0
            t.end(t.open_spans()[-1].span_id, clock)
        spans = {s.span_id: s for s in t.spans}
        assert len(spans) == len(t.spans)  # ids unique
        for s in t.spans:
            assert s.end is not None and s.end >= s.start
            if s.parent_id is not None:
                parent = spans[s.parent_id]
                assert parent.start <= s.start
                assert parent.end >= s.end


class TestNullTracer:
    def test_disabled_and_inert(self):
        before = (len(NULL_TRACER.spans), len(NULL_TRACER.instants),
                  len(NULL_TRACER.samples))
        assert not NULL_TRACER.enabled
        sid = NULL_TRACER.begin("x", 0.0)
        NULL_TRACER.end(sid, 1.0)
        NULL_TRACER.instant("i", 0.0)
        NULL_TRACER.sample("c", 0.0, 1.0)
        with NULL_TRACER.span("y", lambda: 0.0):
            pass
        after = (len(NULL_TRACER.spans), len(NULL_TRACER.instants),
                 len(NULL_TRACER.samples))
        assert before == after == (0, 0, 0)

    def test_default_active_tracer_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_tracing_restores_previous(self):
        t = Tracer()
        with tracing(t) as active:
            assert active is t
            assert get_tracer() is t
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_returns_previous(self):
        prev = set_tracer(Tracer())
        try:
            assert prev is NULL_TRACER
        finally:
            set_tracer(prev)


class TestMetricsRegistry:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        c = reg.counter("a.b")
        c.inc()
        c.inc(2)
        assert reg.counter("a.b") is c
        assert reg.counter("a.b").value == 3

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_histogram_streams(self):
        reg = MetricsRegistry()
        h = reg.histogram("depth")
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        snap = reg.snapshot()
        assert snap["depth.count"] == 3
        assert snap["depth.min"] == 1.0
        assert snap["depth.max"] == 3.0
        assert snap["depth.mean"] == pytest.approx(2.0)

    def test_empty_histogram_omits_min_max(self):
        reg = MetricsRegistry()
        reg.histogram("empty")
        snap = reg.snapshot()
        assert "empty.min" not in snap and "empty.max" not in snap
        assert snap["empty.count"] == 0

    def test_reset_keeps_identity(self):
        reg = MetricsRegistry()
        c = reg.counter("n.events")
        c.inc(5)
        reg.reset("n.")
        assert reg.counter("n.events") is c
        assert c.value == 0

    def test_reset_respects_prefix(self):
        reg = MetricsRegistry()
        reg.counter("a.x").inc()
        reg.counter("b.x").inc()
        reg.reset("a.")
        assert reg.counter("a.x").value == 0
        assert reg.counter("b.x").value == 1

    def test_snapshot_prefix_filters(self):
        reg = MetricsRegistry()
        reg.counter("a.x").inc()
        reg.gauge("b.y").set(2.5)
        assert reg.snapshot("b.") == {"b.y": 2.5}


class TestExporter:
    def _tracer(self):
        t = Tracer()
        outer = t.begin("run", 0.0, layer="netsim", flows=2)
        t.instant("retry", 0.5, layer="platform", attempt=1)
        t.sample("active", 0.25, 2.0, layer="netsim")
        t.end(outer, 1.0)
        return t

    def test_events_validate(self):
        events = to_trace_events(self._tracer())
        assert validate_trace_events(events) == []

    def test_timestamps_scaled_to_us(self):
        events = to_trace_events(self._tracer())
        span = next(e for e in events if e["ph"] == "X")
        assert span["ts"] == 0.0 and span["dur"] == 1e6
        assert span["cat"] == "netsim"
        assert span["args"]["flows"] == 2

    def test_layers_map_to_threads(self):
        events = to_trace_events(self._tracer())
        names = {e["args"]["name"]: e["tid"]
                 for e in events if e["ph"] == "M"}
        assert names["netsim"] == 1 and names["platform"] == 2

    def test_open_span_padded_to_horizon(self):
        t = Tracer()
        t.begin("open", 0.0, layer="netsim")
        t.instant("later", 4.0, layer="netsim")
        events = to_trace_events(t)
        span = next(e for e in events if e["ph"] == "X")
        assert span["dur"] == 4.0 * 1e6
        # Exporting must not close the tracer's copy of the span.
        assert not t.finished()

    def test_exotic_tags_reprd(self):
        t = Tracer()
        sid = t.begin("s", 0.0, layer="netsim", obj={"k": 1})
        t.end(sid, 1.0)
        events = to_trace_events(t)
        span = next(e for e in events if e["ph"] == "X")
        assert span["args"]["obj"] == repr({"k": 1})

    def test_write_and_validate_file(self, tmp_path):
        path = tmp_path / "t.json"
        write_trace(self._tracer(), path, metrics={"a.b": 1})
        payload = validate_trace_file(path)
        assert payload["metrics"] == {"a.b": 1}
        assert payload["displayTimeUnit"] == "ms"

    def test_validate_rejects_garbage(self):
        assert validate_trace_events([{"ph": "Z"}])
        assert validate_trace_events("nope")
        assert validate_trace_events([{"ph": "X", "name": "s",
                                      "pid": 1, "tid": 1,
                                      "ts": -1, "dur": 0}])

    def test_require_layers_enforced(self, tmp_path):
        path = tmp_path / "t.json"
        write_trace(self._tracer(), path)
        with pytest.raises(ValueError, match="aggbox"):
            validate_trace_file(path, require_layers=["aggbox"])


class TestInstrumentation:
    def test_simulator_emits_netsim_spans(self):
        from repro.netsim.network import Link, Network
        from repro.netsim.simulator import FlowSim, FlowSpec

        with tracing(Tracer()) as t:
            sim = FlowSim(Network([Link("l", 10.0)]))
            sim.add_flow(FlowSpec("f", size=10.0, path=("l",)))
            sim.run()
        assert t.finished()
        names = {s.name for s in t.spans}
        assert "flowsim.run" in names and "epoch" in names
        assert all(s.layer.startswith("netsim") for s in t.spans)
        flows = [s for s in t.spans if s.name == "flow"]
        assert len(flows) == 1 and flows[0].layer == "netsim.flow"
        assert flows[0].tags["flow"] == "f"
        assert any(i.name == "link.traffic" for i in t.instants)

    def test_registry_counts_match_legacy_facade(self):
        from repro.netsim.network import Link, Network
        from repro.netsim.simulator import COUNTERS, FlowSim, FlowSpec

        COUNTERS.reset()
        sim = FlowSim(Network([Link("l", 10.0)]))
        sim.add_flow(FlowSpec("f", size=10.0, path=("l",)))
        sim.run()
        snap = COUNTERS.snapshot()
        assert snap["runs"] == 1
        assert snap["flows"] == 1
        assert snap["events"] == METRICS.counter("netsim.events").value

    def test_platform_and_box_layers_traced(self):
        from repro.aggregation import deploy_boxes
        from repro.aggbox.functions import SearchResult, TopKFunction
        from repro.core.platform import NetAggPlatform
        from repro.experiments.common import QUICK
        from repro.topology.threetier import three_tier
        from repro.wire.records import (
            decode_search_results,
            encode_search_results,
        )

        topo = three_tier(QUICK.topo)
        deploy_boxes(topo)
        with tracing(Tracer()) as t:
            platform = NetAggPlatform(topo)
            platform.register_app("topk", TopKFunction(k=3),
                                  encode_search_results,
                                  decode_search_results)
            hosts = sorted(topo.hosts())
            partials = [
                (h, [SearchResult(doc_id=i, score=float(i))])
                for i, h in enumerate(hosts[1:5])
            ]
            platform.execute_request("topk", "r1", hosts[0], partials)
        assert t.finished()
        assert "platform" in t.layers()
        assert "aggbox" in t.layers()
        assert any(s.name == "platform.request" for s in t.spans)
        assert any(s.name == "box.emit" for s in t.spans)


class TestDisabledTracerPurity:
    def test_fig06_output_identical_with_and_without_tracing(self):
        """Tracing must observe, never perturb: the result JSON of a
        traced run is byte-identical to an untraced one."""
        from repro.experiments import load
        from repro.experiments.common import QUICK

        exp = load("fig06_fct_cdf")
        plain = exp.run(scale=QUICK, seed=3).to_json()
        with tracing(Tracer()):
            traced = exp.run(scale=QUICK, seed=3).to_json()
        assert plain == traced

    def test_experiment_result_metrics_round_trip(self):
        from repro.experiments import ExperimentResult

        result = ExperimentResult(
            experiment="x", description="d", columns=("a",),
            metrics={"netsim.events": 7})
        result.add_row(a=1)
        again = ExperimentResult.from_json(result.to_json())
        assert again.metrics == {"netsim.events": 7}
        # Empty metrics stay out of the payload (back-compat).
        bare = ExperimentResult(experiment="x", description="d",
                                columns=("a",))
        assert "metrics" not in bare.to_dict()


class TestTraceCli:
    def test_trace_experiment_covers_all_layers(self, tmp_path, capsys):
        from repro import cli

        out = tmp_path / "trace.json"
        assert cli.main(["trace", "fig06", "--scale", "quick",
                         "--out", str(out)]) == 0
        payload = validate_trace_file(
            out, require_layers=["netsim", "platform", "aggbox"])
        assert payload["metrics"]
        text = capsys.readouterr().out
        assert "spans" in text
        # The CLI run must leave the process tracer disabled.
        assert get_tracer() is NULL_TRACER

    def test_trace_generate_still_works(self, tmp_path, capsys):
        from repro import cli

        out = tmp_path / "wl.jsonl"
        assert cli.main(["trace", "generate", "--scale", "quick",
                         "--out", str(out)]) == 0
        assert out.exists()

    def test_trace_inspect_still_works(self, tmp_path, capsys):
        from repro import cli

        out = tmp_path / "wl.jsonl"
        cli.main(["trace", "generate", "--scale", "quick",
                  "--out", str(out)])
        capsys.readouterr()
        assert cli.main(["trace", "inspect", str(out)]) == 0
        assert "jobs" in capsys.readouterr().out

    def test_trace_inspect_requires_path(self):
        from repro import cli

        with pytest.raises(SystemExit):
            cli.main(["trace", "inspect"])


class TestObsLint:
    def test_no_ad_hoc_telemetry_outside_obs(self):
        """tools/check_obs.py: telemetry containers only in repro.obs
        (plus the allowlisted deprecated SimCounters facade)."""
        import pathlib

        script = (pathlib.Path(__file__).resolve().parents[1]
                  / "tools" / "check_obs.py")
        proc = subprocess.run([sys.executable, str(script)],
                              capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr


class TestFctSummaryDegradation:
    def test_empty_error_names_the_filter(self):
        from repro.netsim.metrics import FctSummary

        with pytest.raises(ValueError, match="kinds=\\['worker'\\]"):
            FctSummary.of([], context="kinds=['worker'], "
                                      "aggregatable=any")

    def test_empty_summary_is_nan_row(self):
        from repro.netsim.metrics import FctSummary

        empty = FctSummary.empty()
        assert empty.count == 0
        assert math.isnan(empty.p99) and math.isnan(empty.mean)
