"""Tests for the NetAgg on-path strategy and box deployment helpers."""

import pytest

from repro.aggregation import (
    NetAggStrategy,
    RackLevelStrategy,
    deploy_box_budget,
    deploy_boxes,
)
from repro.netsim import FlowSim
from repro.netsim.metrics import fct_summary
from repro.netsim.routing import EcmpRouter
from repro.topology import ThreeTierParams, three_tier
from repro.topology.base import AGGR, CORE, TOR
from repro.units import Gbps, MB
from repro.workload import AggJob, Workload

SMALL = ThreeTierParams(
    n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2, hosts_per_tor=4
)


def make_topo(tiers=(TOR, AGGR, CORE), boxes_per_switch=1,
              proc_rate=Gbps(9.2)):
    topo = three_tier(SMALL)
    deploy_boxes(topo, tiers=tiers, proc_rate=proc_rate,
                 boxes_per_switch=boxes_per_switch)
    return topo


def cross_pod_job(alpha=0.1, n_trees=1):
    # master host:0 (pod 0), workers in pod 0 rack 1 and pod 1.
    return AggJob(
        "j", "host:0",
        (
            ("host:4", 10 * MB), ("host:5", 10 * MB),
            ("host:8", 10 * MB), ("host:9", 10 * MB),
            ("host:12", 10 * MB),
        ),
        alpha=alpha,
        n_trees=n_trees,
    )


def plan(topo, job):
    return NetAggStrategy().plan_job(job, topo, EcmpRouter())


def run(topo, specs):
    sim = FlowSim(topo.network)
    sim.add_flows(specs)
    return sim.run()


def by_id(specs):
    return {s.flow_id: s for s in specs}


class TestTreeConstruction:
    def test_worker_flows_enter_first_box(self):
        topo = make_topo()
        specs = plan(topo, cross_pod_job())
        workers = [s for s in specs if s.kind == "worker"]
        assert len(workers) == 5
        for spec in workers:
            # Last two path entries: switch->box wire, box processing.
            assert spec.path[-1].startswith("proc:box:")
            assert spec.size == 10 * MB  # raw partial result

    def test_exactly_one_result_flow(self):
        topo = make_topo()
        specs = plan(topo, cross_pod_job())
        results = [s for s in specs if s.kind == "result"]
        assert len(results) == 1
        assert results[0].path[-1].endswith("->host:0")

    def test_all_box_flows_have_dependencies(self):
        topo = make_topo()
        specs = plan(topo, cross_pod_job())
        for spec in specs:
            if spec.kind in ("internal", "result"):
                assert spec.children

    def test_internal_flows_traverse_parent_proc(self):
        topo = make_topo()
        specs = plan(topo, cross_pod_job())
        for spec in specs:
            if spec.kind == "internal":
                assert spec.path[-1].startswith("proc:box:")

    def test_simulation_completes(self):
        topo = make_topo()
        specs = plan(topo, cross_pod_job())
        result = run(topo, specs)
        assert len(result.records) == len(specs)

    def test_result_size_bounded_by_dictionary(self):
        job = cross_pod_job(alpha=0.1)
        topo = make_topo()
        specs = plan(topo, job)
        (res,) = [s for s in specs if s.kind == "result"]
        assert res.size == pytest.approx(0.1 * job.total_bytes)

    def test_intra_rack_worker_aggregates_at_tor(self):
        topo = make_topo()
        job = AggJob("j", "host:0",
                     (("host:1", MB), ("host:2", MB)), alpha=0.5)
        specs = plan(topo, job)
        flows = by_id(specs)
        # Both workers feed the box at tor:0; one result flow out.
        assert sum(1 for s in specs if s.kind == "worker") == 2
        (res,) = [s for s in specs if s.kind == "result"]
        assert "tor:0" in res.path[0] or "box:tor:0" in res.path[0]

    def test_master_as_worker_rejected(self):
        topo = make_topo()
        job = AggJob("j", "host:0", (("host:0", MB),), alpha=0.5)
        with pytest.raises(ValueError):
            plan(topo, job)


class TestPartialDeployment:
    def test_no_boxes_means_direct_flows(self):
        topo = three_tier(SMALL)  # no boxes at all
        specs = plan(topo, cross_pod_job())
        assert all(s.kind == "worker" for s in specs)
        assert all(s.path[-1].endswith("->host:0") for s in specs)

    def test_core_only_deployment(self):
        topo = make_topo(tiers=(CORE,))
        specs = plan(topo, cross_pod_job())
        # Pod-0 workers (same pod as master) never cross a core, so they
        # go direct; pod-1 workers aggregate at the core box.
        proc_flows = [s for s in specs if s.path and
                      s.path[-1].startswith("proc:")]
        direct = [s for s in specs if s.kind == "worker" and
                  s.path[-1].endswith("->host:0")]
        assert proc_flows and direct

    def test_tor_only_deployment(self):
        topo = make_topo(tiers=(TOR,))
        specs = plan(topo, cross_pod_job())
        kinds = {s.kind for s in specs}
        assert "internal" in kinds  # ToR box -> master-ToR box segments
        result = run(topo, specs)
        assert len(result.records) == len(specs)

    def test_budget_deployment_counts(self):
        topo = three_tier(SMALL)
        placed = deploy_box_budget(topo, budget=3, tiers=(CORE,))
        assert len(placed) == 3
        # 2 cores: round-robin wraps, one core gets 2 boxes.
        assert len(topo.all_boxes()) == 3
        per_switch = [len(topo.boxes_at(s)) for s in sorted(set(placed))]
        assert sorted(per_switch) == [1, 2]

    def test_budget_requires_switches(self):
        topo = three_tier(SMALL)
        with pytest.raises(ValueError):
            deploy_box_budget(topo, budget=0, tiers=(CORE,))


class TestMultipleTrees:
    def test_worker_data_split_across_trees(self):
        topo = make_topo()
        specs = plan(topo, cross_pod_job(n_trees=2))
        worker0 = [s for s in specs if ":w0" in s.flow_id]
        assert len(worker0) == 2
        assert sum(s.size for s in worker0) == pytest.approx(10 * MB)

    def test_trees_use_distinct_prefixes(self):
        topo = make_topo()
        specs = plan(topo, cross_pod_job(n_trees=3))
        prefixes = {s.flow_id.split(":")[1] for s in specs}
        assert prefixes == {"t0", "t1", "t2"}

    def test_total_result_bytes_preserved(self):
        job = cross_pod_job(alpha=0.1, n_trees=2)
        topo = make_topo()
        specs = plan(topo, job)
        results = [s for s in specs if s.kind == "result"]
        assert len(results) == 2
        assert sum(s.size for s in results) == pytest.approx(
            0.1 * job.total_bytes
        )

    def test_simulation_completes_with_trees(self):
        topo = make_topo()
        specs = plan(topo, cross_pod_job(n_trees=4))
        result = run(topo, specs)
        assert len(result.records) == len(specs)


class TestScaleOut:
    def test_trees_balance_over_boxes(self):
        topo = make_topo(boxes_per_switch=2)
        # Many jobs so the hash spreads; count distinct boxes used.
        used = set()
        for i in range(16):
            job = AggJob(f"j{i}", "host:0",
                         (("host:12", MB), ("host:13", MB)), alpha=0.5)
            for spec in plan(topo, job):
                for link in spec.path:
                    if link.startswith("proc:"):
                        used.add(link)
        switches = {u.rsplit(":", 1)[0] for u in used}
        assert len(used) > len(switches)  # more than one box per switch used

    def test_straggler_delay_propagates_without_bypass(self):
        topo = make_topo()
        job = AggJob(
            "j", "host:0",
            (("host:12", MB), ("host:13", MB)),
            alpha=0.5,
            worker_delays=(5.0, 0.0),
        )
        strategy = NetAggStrategy(straggler_bypass=100.0)
        specs = strategy.plan_job(job, topo, EcmpRouter())
        result = run(topo, specs)
        (res_id,) = [s.flow_id for s in specs if s.kind == "result"]
        assert result.records[res_id].completion_time >= 5.0

    def test_straggler_bypass_frees_the_tree(self):
        """§3.1: boxes aggregate available results; the straggler's data
        goes directly to the master and no longer gates the aggregate."""
        topo = make_topo()
        job = AggJob(
            "j", "host:0",
            (("host:12", MB), ("host:13", MB)),
            alpha=0.5,
            worker_delays=(5.0, 0.0),
        )
        specs = plan(topo, job)  # default bypass threshold (0.2 s)
        result = run(topo, specs)
        (res_id,) = [s.flow_id for s in specs if s.kind == "result"]
        # The aggregate completes long before the straggler's delay.
        assert result.records[res_id].completion_time < 5.0
        # The straggler ships directly to the master, raw.
        straggler = result.records["j:t0:w0"]
        assert straggler.spec.path[-1].endswith("->host:0")
        assert straggler.completion_time >= 5.0


class TestProcessingBottleneck:
    def test_slow_box_limits_throughput(self):
        fast = make_topo(proc_rate=Gbps(9.2))
        slow = make_topo(proc_rate=Gbps(0.1))
        job = cross_pod_job()
        fast_res = run(fast, plan(fast, job))
        slow_res = run(slow, plan(slow, job))
        assert fct_summary(slow_res).p99 > fct_summary(fast_res).p99

    def test_netagg_beats_rack_on_incast(self):
        """Eight workers incast into one rack aggregator vs a ToR box."""
        params = ThreeTierParams(n_pods=1, tors_per_pod=2, aggrs_per_pod=1,
                                 n_cores=1, hosts_per_tor=10)
        job = AggJob(
            "j", "host:10",  # master in rack 1
            tuple((f"host:{i}", 10 * MB) for i in range(8)),
            alpha=0.1,
        )
        workload = Workload(jobs=[job])

        topo_rack = three_tier(params)
        rack_specs = RackLevelStrategy().plan(workload, topo_rack)
        rack_result = run(topo_rack, rack_specs)

        topo_na = three_tier(params)
        deploy_boxes(topo_na)
        na_specs = NetAggStrategy().plan(workload, topo_na)
        na_result = run(topo_na, na_specs)

        assert fct_summary(na_result).p99 < 0.5 * fct_summary(rack_result).p99
