"""Tests for distributed aggregation-tree construction."""

import pytest

from repro.aggregation import deploy_boxes
from repro.core.tree import TreeBuilder
from repro.topology import ThreeTierParams, three_tier
from repro.topology.base import AGGR, CORE, TOR

SMALL = ThreeTierParams(
    n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2, hosts_per_tor=4
)


def topo_with_boxes(tiers=(TOR, AGGR, CORE), boxes_per_switch=1):
    topo = three_tier(SMALL)
    deploy_boxes(topo, tiers=tiers, boxes_per_switch=boxes_per_switch)
    return topo


CROSS_POD_WORKERS = ["host:4", "host:5", "host:8", "host:12"]


class TestBuild:
    def test_every_worker_has_entry(self):
        builder = TreeBuilder(topo_with_boxes())
        tree = builder.build("job", "host:0", CROSS_POD_WORKERS)
        assert set(tree.worker_entry) == set(range(4))
        assert all(entry is not None for entry in tree.worker_entry.values())

    def test_single_root_reaches_master_tor(self):
        builder = TreeBuilder(topo_with_boxes())
        tree = builder.build("job", "host:0", CROSS_POD_WORKERS)
        roots = tree.roots()
        assert len(roots) == 1
        root = tree.boxes[roots[0]]
        assert root.lane_to_parent[-1] == tree.master_tor

    def test_tree_is_connected(self):
        builder = TreeBuilder(topo_with_boxes())
        tree = builder.build("job", "host:0", CROSS_POD_WORKERS)
        reachable = set()
        frontier = tree.roots()
        while frontier:
            box_id = frontier.pop()
            reachable.add(box_id)
            frontier.extend(tree.boxes[box_id].children)
        assert reachable == set(tree.boxes)

    def test_parent_child_symmetry(self):
        builder = TreeBuilder(topo_with_boxes())
        tree = builder.build("job", "host:0", CROSS_POD_WORKERS)
        for box_id, vertex in tree.boxes.items():
            for child in vertex.children:
                assert tree.boxes[child].parent == box_id
            if vertex.parent is not None:
                assert box_id in tree.boxes[vertex.parent].children

    def test_same_rack_worker_enters_master_tor_box(self):
        builder = TreeBuilder(topo_with_boxes())
        tree = builder.build("job", "host:0", ["host:1"])
        entry = tree.worker_entry[0]
        assert entry is not None
        assert tree.boxes[entry].info.switch_id == "tor:0"

    def test_depth_reflects_tiers(self):
        builder = TreeBuilder(topo_with_boxes())
        tree = builder.build("job", "host:0", CROSS_POD_WORKERS)
        # A cross-pod worker's entry box (its ToR) is 5 hops from master:
        # tor -> aggr -> core -> aggr -> tor.
        entry = tree.worker_entry[3]  # host:12, pod 1
        assert tree.depth_of(entry) == 5

    def test_master_as_worker_rejected(self):
        builder = TreeBuilder(topo_with_boxes())
        with pytest.raises(ValueError):
            builder.build("job", "host:0", ["host:0"])

    def test_deterministic(self):
        builder = TreeBuilder(topo_with_boxes())
        t1 = builder.build("job", "host:0", CROSS_POD_WORKERS)
        t2 = builder.build("job", "host:0", CROSS_POD_WORKERS)
        assert t1.worker_entry == t2.worker_entry
        assert set(t1.boxes) == set(t2.boxes)


class TestPartialDeployments:
    def test_no_boxes_all_direct(self):
        builder = TreeBuilder(three_tier(SMALL))
        tree = builder.build("job", "host:0", CROSS_POD_WORKERS)
        assert tree.direct_workers() == [0, 1, 2, 3]
        assert not tree.boxes

    def test_core_only_splits_workers(self):
        builder = TreeBuilder(topo_with_boxes(tiers=(CORE,)))
        tree = builder.build("job", "host:0", CROSS_POD_WORKERS)
        # Pod-0 workers (hosts 4,5) never cross a core: direct.
        assert 0 in tree.direct_workers()
        assert 1 in tree.direct_workers()
        # Pod-1 workers aggregate at the core box.
        assert tree.worker_entry[2] is not None
        assert tree.worker_entry[3] is not None

    def test_aggr_only_skips_core_in_lane(self):
        builder = TreeBuilder(topo_with_boxes(tiers=(AGGR,)))
        tree = builder.build("job", "host:0", CROSS_POD_WORKERS)
        entry = tree.worker_entry[3]
        vertex = tree.boxes[entry]
        # Lane from the pod-1 aggr box to its parent passes the core
        # switch without aggregation there.
        assert vertex.parent is not None
        assert any(lane.startswith("core:")
                   for lane in vertex.lane_to_parent)


class TestMultipleTrees:
    def test_disjoint_lanes_when_possible(self):
        builder = TreeBuilder(topo_with_boxes())
        trees = builder.build_many("job", "host:0", CROSS_POD_WORKERS, 4)
        cores = {
            builder.core("job", t.tree_index) for t in trees
        }
        # 2 cores, 4 trees: both cores must be exercised.
        assert len(cores) == 2

    def test_n_trees_validation(self):
        builder = TreeBuilder(topo_with_boxes())
        with pytest.raises(ValueError):
            builder.build_many("job", "host:0", CROSS_POD_WORKERS, 0)


class TestScaleOut:
    def test_box_choice_balances(self):
        builder = TreeBuilder(topo_with_boxes(boxes_per_switch=4))
        chosen = {
            builder.box_id(f"job{i}", 0, "core:0") for i in range(32)
        }
        assert len(chosen) > 1


class TestScaleOutTrees:
    def test_trees_use_distinct_boxes_on_same_switch(self):
        """An application's trees round-robin over a switch's boxes --
        the mechanism behind Fig. 13's scale-out."""
        builder = TreeBuilder(topo_with_boxes(boxes_per_switch=4))
        for switch in ("core:0", "tor:0", "aggr:0:0"):
            chosen = {
                builder.box_id("job", t, switch) for t in range(4)
            }
            assert len(chosen) == 4
