"""Tests for the deployment cost model."""

import pytest

from repro.cost import PriceList, netagg_cost, upgrade_cost
from repro.cost.model import network_cost
from repro.topology import ThreeTierParams
from repro.units import Gbps

BASE = ThreeTierParams()  # 1G edges, 4:1 oversubscription


class TestPriceList:
    def test_rate_selection(self):
        prices = PriceList()
        assert prices.port(Gbps(1.0)) == prices.port_1g
        assert prices.port(Gbps(10.0)) == prices.port_10g
        assert prices.nic(Gbps(10.0)) == prices.nic_10g


class TestNetworkCost:
    def test_positive_and_itemised(self):
        report = network_cost(BASE)
        assert report.total > 0
        assert len(report.items) == 3

    def test_full_bisection_costs_more(self):
        base = network_cost(BASE).total
        full = network_cost(BASE.scaled(oversubscription=1.0)).total
        assert full > base

    def test_ten_gig_edges_cost_more(self):
        base = network_cost(BASE).total
        ten = network_cost(BASE.scaled(edge_rate=Gbps(10.0))).total
        assert ten > base


class TestUpgradeCost:
    def test_noop_upgrade_is_free(self):
        assert upgrade_cost(BASE, BASE).total == 0.0

    def test_full_bisection_10g_most_expensive(self):
        full_10g = upgrade_cost(
            BASE, BASE.scaled(edge_rate=Gbps(10.0), oversubscription=1.0)
        ).total
        oversub_10g = upgrade_cost(
            BASE, BASE.scaled(edge_rate=Gbps(10.0))
        ).total
        full_1g = upgrade_cost(
            BASE, BASE.scaled(oversubscription=1.0)
        ).total
        assert full_10g > oversub_10g
        assert full_10g > full_1g

    def test_netagg_is_fraction_of_oversub_10g(self):
        """The paper's Fig. 3 finding: NetAgg costs a small fraction of
        even the cheapest serious network upgrade."""
        n_switches = BASE.n_tors + BASE.n_pods * BASE.aggrs_per_pod \
            + BASE.n_cores
        boxes = netagg_cost(n_switches).total
        oversub_10g = upgrade_cost(
            BASE, BASE.scaled(edge_rate=Gbps(10.0))
        ).total
        assert boxes < 0.5 * oversub_10g

    def test_incremental_cheaper_than_full(self):
        full = netagg_cost(88).total
        incremental = netagg_cost(16).total
        assert incremental < 0.25 * full


class TestNetAggCost:
    def test_itemised(self):
        report = netagg_cost(10)
        assert len(report.items) == 3
        assert report.total == 10 * (2500 + 500 + 900)

    def test_zero_boxes_free(self):
        assert netagg_cost(0).total == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            netagg_cost(-1)

    def test_report_add_validation(self):
        report = netagg_cost(1)
        with pytest.raises(ValueError):
            report.add("bad", -1, 10.0)
