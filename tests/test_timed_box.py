"""Tests for the dynamic WFQ executor and the timed agg box."""

import pytest

from repro.aggbox.box import AppBinding
from repro.aggbox.functions import SumFunction
from repro.aggbox.scheduler import WfqExecutor
from repro.aggbox.timed import TimedAggBox
from repro.experiments import QUICK, ablation_colocation
from repro.netsim.engine import EventQueue
from repro.wire.serializer import read_float, write_float


def binding(app="sum"):
    return AppBinding(
        app=app,
        function=SumFunction(),
        deserialise=lambda b: read_float(b)[0],
        serialise=write_float,
    )


class TestWfqExecutor:
    def test_single_task_runs_for_duration(self):
        queue = EventQueue()
        executor = WfqExecutor(queue, threads=1)
        executor.register_app("a")
        done = []
        executor.submit("a", 0.5, lambda: done.append(queue.now))
        queue.run()
        assert done == [0.5]

    def test_parallelism_bounded_by_threads(self):
        queue = EventQueue()
        executor = WfqExecutor(queue, threads=2)
        executor.register_app("a")
        done = []
        for _ in range(4):
            executor.submit("a", 1.0, lambda: done.append(queue.now))
        queue.run()
        assert done == [1.0, 1.0, 2.0, 2.0]

    def test_fixed_weights_are_count_fair(self):
        """Equal pick counts: the long-task app hogs CPU time (the
        Fig. 25 pathology)."""
        queue = EventQueue()
        executor = WfqExecutor(queue, threads=1, adaptive=False)
        executor.register_app("long", 0.5)
        executor.register_app("short", 0.5)
        for _ in range(50):
            executor.submit("long", 0.030, lambda: None)
            executor.submit("short", 0.001, lambda: None)
        queue.run()
        share = executor.cpu_seconds["long"] / sum(
            executor.cpu_seconds.values())
        assert share > 0.9

    def test_adaptive_weights_are_time_fair(self):
        queue = EventQueue()
        executor = WfqExecutor(queue, threads=1, adaptive=True)
        executor.register_app("long", 0.5)
        executor.register_app("short", 0.5)
        # Backlog both queues, then drain for a fixed horizon.
        for _ in range(400):
            executor.submit("long", 0.030, lambda: None)
        for _ in range(12000):
            executor.submit("short", 0.001, lambda: None)
        queue.run(until=6.0)
        total = sum(executor.cpu_seconds.values())
        share = executor.cpu_seconds["long"] / total
        assert share == pytest.approx(0.5, abs=0.1)

    def test_validation(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            WfqExecutor(queue, threads=0)
        executor = WfqExecutor(queue)
        executor.register_app("a")
        with pytest.raises(ValueError):
            executor.register_app("a")
        with pytest.raises(KeyError):
            executor.submit("ghost", 1.0, lambda: None)
        with pytest.raises(ValueError):
            executor.submit("a", -1.0, lambda: None)


class TestTimedAggBox:
    def test_emits_after_cpu_time(self):
        queue = EventQueue()
        box = TimedAggBox(queue, cores=2, core_rate=1000.0)
        box.register_app(binding())
        emitted = []
        box.announce("sum", "r", expected=2,
                     on_emit=lambda v, t: emitted.append((v, t)))
        box.submit("sum", "r", "w0", 1.0, nbytes=500.0)   # 0.5s on a core
        box.submit("sum", "r", "w1", 2.0, nbytes=500.0)
        queue.run()
        assert emitted == [(3.0, 0.5)]  # both merges in parallel

    def test_latency_measured_from_first_arrival(self):
        queue = EventQueue()
        box = TimedAggBox(queue, cores=1, core_rate=1000.0)
        box.register_app(binding())
        box.announce("sum", "r", expected=2)
        box.submit("sum", "r", "w0", 1.0, nbytes=1000.0)
        box.submit("sum", "r", "w1", 1.0, nbytes=1000.0)
        queue.run()
        (latency,) = box.latencies("sum")
        assert latency == pytest.approx(2.0)  # serialised on one core

    def test_multi_app_contention(self):
        queue = EventQueue()
        box = TimedAggBox(queue, cores=1, adaptive=True)
        box.register_app(binding("a"), target_share=0.5)
        box.register_app(binding("b"), target_share=0.5)
        for i in range(5):
            box.announce("a", f"r{i}", expected=1)
            box.submit("a", f"r{i}", "w", 1.0, nbytes=80_000.0)
            box.announce("b", f"r{i}", expected=1)
            box.submit("b", f"r{i}", "w", 1.0, nbytes=80_000.0)
        queue.run()
        assert len(box.latencies("a")) == 5
        assert len(box.latencies("b")) == 5


class TestColocationAblation:
    def test_adaptive_rescues_batch_latency(self):
        result = ablation_colocation.run(scale=QUICK)
        rows = {r["scheduler"]: r for r in result.rows}
        assert rows["fixed"]["batch_p99_ms"] > \
            20 * rows["adaptive"]["batch_p99_ms"]
        assert rows["fixed"]["online_cpu_share"] > 0.9
        assert rows["adaptive"]["batch_done"] > \
            3 * rows["fixed"]["batch_done"]
