"""Tests for the cooperative WFQ task scheduler (Figs. 25/26)."""

import pytest

from repro.aggbox.scheduler import (
    SchedulerParams,
    TaskScheduler,
    WorkloadSpec,
)


def make(adaptive, solr_ms=30.0, hadoop_ms=1.0, seed=1):
    return TaskScheduler(
        [
            WorkloadSpec("solr", task_seconds=solr_ms / 1e3,
                         target_share=0.5),
            WorkloadSpec("hadoop", task_seconds=hadoop_ms / 1e3,
                         target_share=0.5),
        ],
        SchedulerParams(adaptive=adaptive),
        seed=seed,
    )


class TestValidation:
    def test_workload_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec("a", task_seconds=0.0, target_share=0.5)
        with pytest.raises(ValueError):
            WorkloadSpec("a", task_seconds=0.1, target_share=0.0)
        with pytest.raises(ValueError):
            WorkloadSpec("a", task_seconds=0.1, target_share=0.5,
                         jitter=1.0)

    def test_scheduler_validation(self):
        with pytest.raises(ValueError):
            TaskScheduler([])
        with pytest.raises(ValueError):
            SchedulerParams(threads=0)
        spec = WorkloadSpec("a", task_seconds=0.1, target_share=0.5)
        with pytest.raises(ValueError):
            TaskScheduler([spec, spec])

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            make(adaptive=False).run(0.0)


class TestFixedWeights:
    def test_long_task_app_starves_the_other(self):
        """Fig. 25: fixed 50/50 picks give the 30ms-task app ~97% CPU."""
        result = make(adaptive=False).run(30.0)
        assert result.overall_share("solr") > 0.85
        assert result.overall_share("hadoop") < 0.15

    def test_equal_tasks_fairly_shared(self):
        result = make(adaptive=False, solr_ms=5.0, hadoop_ms=5.0).run(30.0)
        assert result.overall_share("solr") == pytest.approx(0.5, abs=0.1)


class TestAdaptiveWeights:
    def test_restores_target_shares(self):
        """Fig. 26: adaptive weights converge to the 50/50 target."""
        result = make(adaptive=True).run(30.0)
        assert result.overall_share("solr") == pytest.approx(0.5, abs=0.08)
        assert result.overall_share("hadoop") == pytest.approx(0.5, abs=0.08)

    def test_respects_unequal_targets(self):
        scheduler = TaskScheduler(
            [
                WorkloadSpec("big", task_seconds=0.03, target_share=0.75),
                WorkloadSpec("small", task_seconds=0.001, target_share=0.25),
            ],
            SchedulerParams(adaptive=True),
            seed=3,
        )
        result = scheduler.run(30.0)
        assert result.overall_share("big") == pytest.approx(0.75, abs=0.1)

    def test_timeline_windows_cover_run(self):
        result = make(adaptive=True).run(10.0)
        assert len(result.timeline) >= 9
        for _, snapshot in result.timeline:
            total = sum(snapshot.values())
            assert total == pytest.approx(1.0, abs=1e-6) or total == 0.0

    def test_deterministic_given_seed(self):
        a = make(adaptive=True, seed=7).run(10.0)
        b = make(adaptive=True, seed=7).run(10.0)
        assert a.shares["solr"].cpu_seconds == b.shares["solr"].cpu_seconds

    def test_single_app_gets_everything(self):
        scheduler = TaskScheduler(
            [WorkloadSpec("only", task_seconds=0.01, target_share=1.0)],
            SchedulerParams(adaptive=True),
        )
        result = scheduler.run(5.0)
        assert result.overall_share("only") == pytest.approx(1.0)
