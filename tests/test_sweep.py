"""Tests for the multiprocess sweep runner (:mod:`repro.experiments.sweep`).

The load-bearing property is determinism: because every sweep cell
carries its own explicit seed, the merged results must be bit-for-bit
identical at any worker count -- parallelism is an implementation
detail, not a semantics change.  The counter-merge contract matters for
the same reason: observability totals cannot depend on whether cells
ran in-process or in fork children.
"""

import multiprocessing
import os

import pytest

from repro.experiments.sweep import (
    SCALES,
    _effective_processes,
    run_parallel,
    sweep,
)
from repro.obs import METRICS

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


def _square(x):
    return x * x


def _bump_counter(x):
    METRICS.counter("netsim.test_sweep_probe").inc(x)
    return x


class TestEffectiveProcesses:
    def test_single_item_is_serial(self):
        assert _effective_processes(8, 1) == 1

    def test_explicit_one_is_serial(self):
        assert _effective_processes(1, 10) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESSES", "1")
        assert _effective_processes(None, 10) == 1

    def test_env_must_be_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESSES", "lots")
        with pytest.raises(SystemExit):
            _effective_processes(None, 10)

    def test_capped_by_item_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROCESSES", raising=False)
        if not HAVE_FORK:
            pytest.skip("no fork start method")
        assert _effective_processes(64, 3) <= 3


class TestRunParallel:
    def test_serial_matches_map(self):
        items = list(range(7))
        assert run_parallel(_square, items, processes=1) == \
            [x * x for x in items]

    @pytest.mark.skipif(not HAVE_FORK, reason="no fork start method")
    def test_parallel_preserves_order(self):
        items = list(range(11))
        assert run_parallel(_square, items, processes=3) == \
            [x * x for x in items]

    @pytest.mark.skipif(not HAVE_FORK, reason="no fork start method")
    def test_counter_increments_merge_back(self):
        """Child-process ``netsim.*`` counter increments land in the
        parent registry, so totals equal a serial run's."""
        before = METRICS.counter("netsim.test_sweep_probe").value
        run_parallel(_bump_counter, [1, 2, 3, 4], processes=2)
        after = METRICS.counter("netsim.test_sweep_probe").value
        assert after - before == 1 + 2 + 3 + 4


class TestSweep:
    def test_scales_vocabulary(self):
        assert set(SCALES) == {"quick", "bench", "default", "paper"}

    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError, match="unknown scale"):
            sweep(["fig06"], scales=("warp",), seeds=(1,))

    def test_merged_result_shape(self):
        results = sweep(["fig06"], scales=("quick",), seeds=(1, 2),
                        processes=1)
        assert len(results) == 1
        merged = results[0]
        assert merged.columns[:2] == ("scale", "seed")
        seeds_seen = sorted(set(merged.column("seed")))
        assert seeds_seen == [1, 2]
        assert all(scale == "quick" for scale in merged.column("scale"))
        # Four strategies per seed.
        assert len(merged.rows) == 8

    @pytest.mark.skipif(not HAVE_FORK, reason="no fork start method")
    def test_worker_count_does_not_change_results(self):
        """Bit-for-bit determinism: serial and two-worker sweeps of the
        same grid produce identical payloads."""
        grid = dict(scales=("quick",), seeds=(1, 2))
        serial = [r.to_dict() for r in
                  sweep(["fig06"], processes=1, **grid)]
        forked = [r.to_dict() for r in
                  sweep(["fig06"], processes=2, **grid)]
        assert serial == forked


class TestSweepCli:
    def test_cli_sweep_writes_json(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "sweep.json"
        code = main(["sweep", "fig06", "--scale", "quick",
                     "--seeds", "1,2", "--processes", "1",
                     "--out", str(out)])
        assert code == 0
        import json
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert len(payload) == 1
        assert payload[0]["columns"][:2] == ["scale", "seed"]
        assert len(payload[0]["rows"]) == 8

    def test_cli_sweep_rejects_bad_seeds(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="comma-separated integers"):
            main(["sweep", "fig06", "--seeds", "one,two"])

    def test_cli_sweep_rejects_bad_scale(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="unknown scale"):
            main(["sweep", "fig06", "--scale", "warp"])
