"""Tests for the incremental max-min solver.

The property suite drives :class:`IncrementalMaxMin` through random
histories of flow arrivals, completions, reroutes and mid-run capacity
changes, and cross-checks every intermediate allocation against the
exact batch solver :func:`repro.netsim.fairness.max_min_rates_py` run
from scratch on the same instance.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.fairness import max_min_rates_py
from repro.netsim.incremental import IncrementalMaxMin

#: The incremental kernel and the lock-step batch solver accumulate
#: floating-point error differently; agreement is to ~1e-9 relative.
REL = 1e-9
ABS = 1e-9


def assert_matches_exact(solver, flows, links, caps):
    got = solver.rates()
    want = max_min_rates_py(flows, links, caps)
    assert set(got) == set(want)
    for flow_id in want:
        if math.isinf(want[flow_id]):
            assert math.isinf(got[flow_id]), flow_id
        else:
            assert got[flow_id] == pytest.approx(
                want[flow_id], rel=REL, abs=ABS), flow_id


class TestBasics:
    def test_empty(self):
        solver = IncrementalMaxMin({"l": 10.0})
        assert dict(solver.rates()) == {}
        assert len(solver) == 0

    def test_single_flow_gets_full_link(self):
        solver = IncrementalMaxMin({"l": 10.0})
        solver.add_flow("f", ["l"])
        assert solver.rate("f") == pytest.approx(10.0)
        assert "f" in solver

    def test_classic_three_flow_example(self):
        solver = IncrementalMaxMin({"l1": 10.0, "l2": 6.0})
        solver.add_flow("a", ["l1"])
        solver.add_flow("b", ["l1", "l2"])
        solver.add_flow("c", ["l2"])
        rates = solver.rates()
        assert rates["b"] == pytest.approx(3.0)
        assert rates["c"] == pytest.approx(3.0)
        assert rates["a"] == pytest.approx(7.0)

    def test_removal_redistributes(self):
        solver = IncrementalMaxMin({"l": 9.0})
        solver.add_flow("a", ["l"])
        solver.add_flow("b", ["l"])
        solver.add_flow("c", ["l"])
        assert solver.rate("a") == pytest.approx(3.0)
        solver.remove_flow("b")
        rates = solver.rates()
        assert rates["a"] == pytest.approx(4.5)
        assert "b" not in rates

    def test_rate_cap_binds(self):
        solver = IncrementalMaxMin({"l": 10.0})
        solver.add_flow("a", ["l"], rate_cap=2.0)
        solver.add_flow("b", ["l"])
        rates = solver.rates()
        assert rates["a"] == pytest.approx(2.0)
        assert rates["b"] == pytest.approx(8.0)

    def test_linkless_flow_unbounded_or_capped(self):
        solver = IncrementalMaxMin({})
        solver.add_flow("free", [])
        solver.add_flow("capped", [], rate_cap=3.0)
        rates = solver.rates()
        assert math.isinf(rates["free"])
        assert rates["capped"] == pytest.approx(3.0)

    def test_repeated_link_charged_once(self):
        solver = IncrementalMaxMin({"l": 10.0})
        solver.add_flow("f", ["l", "l"])
        assert solver.rate("f") == pytest.approx(10.0)

    def test_set_capacity_down_and_up(self):
        solver = IncrementalMaxMin({"l": 10.0})
        solver.add_flow("a", ["l"])
        solver.add_flow("b", ["l"])
        solver.rates()
        solver.set_capacity("l", 4.0)
        assert solver.rate("a") == pytest.approx(2.0)
        solver.set_capacity("l", 0.0)
        assert solver.rate("a") == pytest.approx(0.0)
        solver.set_capacity("l", 12.0)
        assert solver.rate("b") == pytest.approx(6.0)

    def test_reroute(self):
        solver = IncrementalMaxMin({"l1": 10.0, "l2": 2.0})
        solver.add_flow("a", ["l1"])
        solver.add_flow("b", ["l1"])
        solver.rates()
        solver.reroute("b", ["l2"])
        rates = solver.rates()
        assert rates["a"] == pytest.approx(10.0)
        assert rates["b"] == pytest.approx(2.0)

    def test_duplicate_flow_rejected(self):
        solver = IncrementalMaxMin({"l": 1.0})
        solver.add_flow("f", ["l"])
        with pytest.raises(ValueError):
            solver.add_flow("f", ["l"])

    def test_unknown_link_rejected(self):
        solver = IncrementalMaxMin({"l": 1.0})
        with pytest.raises(KeyError):
            solver.add_flow("f", ["nope"])
        with pytest.raises(KeyError):
            solver.set_capacity("nope", 1.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            IncrementalMaxMin({"l": -1.0})
        solver = IncrementalMaxMin({"l": 1.0})
        with pytest.raises(ValueError):
            solver.set_capacity("l", -2.0)

    def test_cache_hit_without_perturbation(self):
        solver = IncrementalMaxMin({"l": 10.0})
        solver.add_flow("f", ["l"])
        solver.rates()
        solves = solver.stats.solves
        solver.rates()
        solver.rates()
        assert solver.stats.solves == solves
        assert solver.stats.cache_hits >= 2

    def test_untouched_component_not_resolved(self):
        solver = IncrementalMaxMin({"l1": 10.0, "l2": 10.0})
        solver.add_flow("a", ["l1"])
        solver.add_flow("b", ["l2"])
        solver.rates()
        resolved = solver.stats.flows_resolved
        solver.add_flow("c", ["l2"])
        solver.rates()
        # Only the l2 component (b, c) re-solves; a's rate is reused.
        assert solver.stats.flows_resolved == resolved + 2
        assert solver.stats.flows_reused >= 1


@st.composite
def random_history(draw):
    """A capacity map plus a random op history over it.

    Ops: ("add", fid, path, cap) / ("remove", fid) /
    ("reroute", fid, path, cap) / ("capacity", link, value) /
    ("solve",).
    """
    n_links = draw(st.integers(1, 6))
    links = {f"l{i}": draw(st.floats(0.5, 100.0)) for i in range(n_links)}
    link_ids = sorted(links)
    ops = []
    active = []
    n_ops = draw(st.integers(1, 30))
    next_fid = 0
    for _ in range(n_ops):
        kind = draw(st.sampled_from(
            ["add", "add", "add", "remove", "reroute", "capacity",
             "solve"]))
        if kind == "add" or (kind in ("remove", "reroute") and not active):
            fid = f"f{next_fid}"
            next_fid += 1
            path_len = draw(st.integers(0, min(4, n_links)))
            path = draw(st.lists(st.sampled_from(link_ids),
                                 min_size=path_len, max_size=path_len,
                                 unique=True))
            cap = draw(st.floats(0.1, 50.0)) \
                if (not path or draw(st.booleans())) else None
            ops.append(("add", fid, path, cap))
            active.append(fid)
        elif kind == "remove":
            fid = draw(st.sampled_from(active))
            active.remove(fid)
            ops.append(("remove", fid))
        elif kind == "reroute":
            fid = draw(st.sampled_from(active))
            path_len = draw(st.integers(0, min(4, n_links)))
            path = draw(st.lists(st.sampled_from(link_ids),
                                 min_size=path_len, max_size=path_len,
                                 unique=True))
            cap = draw(st.floats(0.1, 50.0)) \
                if (not path or draw(st.booleans())) else None
            ops.append(("reroute", fid, path, cap))
        elif kind == "capacity":
            link = draw(st.sampled_from(link_ids))
            value = draw(st.one_of(st.just(0.0), st.floats(0.5, 100.0)))
            ops.append(("capacity", link, value))
        else:
            ops.append(("solve",))
    return links, ops


class TestPropertyBased:
    @given(random_history())
    @settings(max_examples=200, deadline=None)
    def test_matches_exact_solver_throughout(self, history):
        """After every mutation batch, the incremental allocation equals
        a from-scratch exact solve of the current instance -- including
        mid-run capacity events and interleaved warm-started solves."""
        links, ops = history
        capacities = dict(links)
        solver = IncrementalMaxMin(capacities)
        flows = {}
        caps = {}
        for op in ops:
            if op[0] == "add":
                _, fid, path, cap = op
                solver.add_flow(fid, path, rate_cap=cap)
                flows[fid] = path
                if cap is not None:
                    caps[fid] = cap
            elif op[0] == "remove":
                solver.remove_flow(op[1])
                del flows[op[1]]
                caps.pop(op[1], None)
            elif op[0] == "reroute":
                _, fid, path, cap = op
                solver.reroute(fid, path, rate_cap=cap)
                flows[fid] = path
                caps.pop(fid, None)
                if cap is not None:
                    caps[fid] = cap
            elif op[0] == "capacity":
                _, link, value = op
                solver.set_capacity(link, value)
                capacities[link] = value
            else:
                assert_matches_exact(solver, flows, capacities, caps)
        assert_matches_exact(solver, flows, capacities, caps)

    @given(random_history())
    @settings(max_examples=100, deadline=None)
    def test_no_link_overloaded_and_caps_respected(self, history):
        links, ops = history
        capacities = dict(links)
        solver = IncrementalMaxMin(capacities)
        flows = {}
        caps = {}
        for op in ops:
            if op[0] == "add":
                _, fid, path, cap = op
                solver.add_flow(fid, path, rate_cap=cap)
                flows[fid] = path
                if cap is not None:
                    caps[fid] = cap
            elif op[0] == "remove":
                solver.remove_flow(op[1])
                del flows[op[1]]
                caps.pop(op[1], None)
            elif op[0] == "reroute":
                _, fid, path, cap = op
                solver.reroute(fid, path, rate_cap=cap)
                flows[fid] = path
                caps.pop(fid, None)
                if cap is not None:
                    caps[fid] = cap
            elif op[0] == "capacity":
                _, link, value = op
                solver.set_capacity(link, value)
                capacities[link] = value
        rates = solver.rates()
        for link, capacity in capacities.items():
            load = sum(rates[f] for f, path in flows.items()
                       if link in path)
            assert load <= capacity * (1 + 1e-6) + 1e-9
        for fid, cap in caps.items():
            assert rates[fid] <= cap * (1 + 1e-6)

    @given(random_history())
    @settings(max_examples=50, deadline=None)
    def test_incremental_equals_fresh_instance(self, history):
        """A warm solver and a freshly built one agree bit-for-bit on
        the final instance (the warm path introduces no drift beyond
        the comparison tolerance)."""
        links, ops = history
        capacities = dict(links)
        warm = IncrementalMaxMin(capacities)
        flows = {}
        caps = {}
        for op in ops:
            if op[0] == "add":
                _, fid, path, cap = op
                warm.add_flow(fid, path, rate_cap=cap)
                flows[fid] = (path, cap)
            elif op[0] == "remove":
                warm.remove_flow(op[1])
                del flows[op[1]]
            elif op[0] == "reroute":
                _, fid, path, cap = op
                warm.reroute(fid, path, rate_cap=cap)
                flows[fid] = (path, cap)
            elif op[0] == "capacity":
                _, link, value = op
                warm.set_capacity(link, value)
                capacities[link] = value
            else:
                warm.rates()
        cold = IncrementalMaxMin(capacities)
        for fid, (path, cap) in flows.items():
            cold.add_flow(fid, path, rate_cap=cap)
        warm_rates = warm.rates()
        cold_rates = cold.rates()
        for fid in flows:
            if math.isinf(cold_rates[fid]):
                assert math.isinf(warm_rates[fid])
            else:
                assert warm_rates[fid] == pytest.approx(
                    cold_rates[fid], rel=REL, abs=ABS)
