"""Tests for the flow-level simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.network import Link, Network
from repro.netsim.simulator import FlowSim, FlowSpec


def two_link_network():
    return Network([Link("l1", 10.0), Link("l2", 10.0)])


class TestFlowSpecValidation:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FlowSpec("f", size=-1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            FlowSpec("f", size=1.0, start_time=-0.1)

    def test_nonpositive_cap_rejected(self):
        with pytest.raises(ValueError):
            FlowSpec("f", size=1.0, rate_cap=0.0)

    def test_duplicate_flow_id_rejected(self):
        sim = FlowSim(two_link_network())
        sim.add_flow(FlowSpec("f", size=1.0, path=("l1",)))
        with pytest.raises(ValueError):
            sim.add_flow(FlowSpec("f", size=2.0, path=("l2",)))

    def test_unknown_link_rejected(self):
        sim = FlowSim(two_link_network())
        with pytest.raises(KeyError):
            sim.add_flow(FlowSpec("f", size=1.0, path=("nope",)))

    def test_unknown_child_rejected(self):
        sim = FlowSim(two_link_network())
        sim.add_flow(FlowSpec("f", size=1.0, path=("l1",), children=("ghost",)))
        with pytest.raises(KeyError):
            sim.run()

    def test_dependency_cycle_rejected(self):
        sim = FlowSim(two_link_network())
        sim.add_flow(FlowSpec("a", size=1.0, path=("l1",), children=("b",)))
        sim.add_flow(FlowSpec("b", size=1.0, path=("l2",), children=("a",)))
        with pytest.raises(ValueError):
            sim.run()


class TestSingleFlow:
    def test_fct_is_size_over_capacity(self):
        sim = FlowSim(two_link_network())
        sim.add_flow(FlowSpec("f", size=100.0, path=("l1",)))
        result = sim.run()
        assert result.records["f"].fct == pytest.approx(10.0)

    def test_start_time_offsets_completion_not_fct(self):
        sim = FlowSim(two_link_network())
        sim.add_flow(FlowSpec("f", size=100.0, path=("l1",), start_time=5.0))
        result = sim.run()
        record = result.records["f"]
        assert record.completion_time == pytest.approx(15.0)
        assert record.fct == pytest.approx(10.0)

    def test_zero_size_completes_instantly(self):
        sim = FlowSim(two_link_network())
        sim.add_flow(FlowSpec("f", size=0.0, path=("l1",), start_time=2.0))
        result = sim.run()
        assert result.records["f"].completion_time == pytest.approx(2.0)

    def test_empty_path_completes_instantly(self):
        sim = FlowSim(two_link_network())
        sim.add_flow(FlowSpec("f", size=100.0))
        result = sim.run()
        assert result.records["f"].fct == pytest.approx(0.0)

    def test_rate_cap_slows_flow(self):
        sim = FlowSim(two_link_network())
        sim.add_flow(FlowSpec("f", size=100.0, path=("l1",), rate_cap=2.0))
        result = sim.run()
        assert result.records["f"].fct == pytest.approx(50.0)


class TestSharing:
    def test_two_flows_share_fairly(self):
        sim = FlowSim(two_link_network())
        sim.add_flow(FlowSpec("a", size=100.0, path=("l1",)))
        sim.add_flow(FlowSpec("b", size=100.0, path=("l1",)))
        result = sim.run()
        # Each gets 5.0 B/s until both finish together at t=20.
        assert result.records["a"].fct == pytest.approx(20.0)
        assert result.records["b"].fct == pytest.approx(20.0)

    def test_short_flow_finishes_then_long_speeds_up(self):
        sim = FlowSim(two_link_network())
        sim.add_flow(FlowSpec("short", size=50.0, path=("l1",)))
        sim.add_flow(FlowSpec("long", size=150.0, path=("l1",)))
        result = sim.run()
        # Shared at 5 B/s until short drains at t=10; long then has 100
        # bytes left at 10 B/s -> finishes at t=20.
        assert result.records["short"].fct == pytest.approx(10.0)
        assert result.records["long"].fct == pytest.approx(20.0)

    def test_late_arrival_resolves_rates(self):
        sim = FlowSim(two_link_network())
        sim.add_flow(FlowSpec("early", size=100.0, path=("l1",)))
        sim.add_flow(FlowSpec("late", size=50.0, path=("l1",), start_time=5.0))
        result = sim.run()
        # early drains 50 bytes alone by t=5, then both share at 5 B/s:
        # each has exactly 50 bytes left, so both finish at t=15.
        assert result.records["late"].completion_time == pytest.approx(15.0)
        assert result.records["early"].completion_time == pytest.approx(15.0)

    def test_disjoint_paths_do_not_interact(self):
        sim = FlowSim(two_link_network())
        sim.add_flow(FlowSpec("a", size=100.0, path=("l1",)))
        sim.add_flow(FlowSpec("b", size=100.0, path=("l2",)))
        result = sim.run()
        assert result.records["a"].fct == pytest.approx(10.0)
        assert result.records["b"].fct == pytest.approx(10.0)


class TestDependencies:
    def test_parent_admitted_after_child_drains(self):
        sim = FlowSim(two_link_network())
        sim.add_flow(FlowSpec("child", size=100.0, path=("l1",)))
        sim.add_flow(FlowSpec(
            "parent", size=10.0, path=("l2",), children=("child",)
        ))
        result = sim.run()
        parent = result.records["parent"]
        # Parent starts only when the child drains (t=10): an aggregate
        # cannot be forwarded before its input arrived.
        assert parent.admitted_time == pytest.approx(10.0)
        assert parent.completion_time == pytest.approx(11.0)
        # Its own FCT is just its transfer time; the wait is separate.
        assert parent.fct == pytest.approx(1.0)
        assert parent.dependency_wait == pytest.approx(10.0)

    def test_dependency_chains_serialise(self):
        sim = FlowSim(two_link_network())
        sim.add_flow(FlowSpec("leaf", size=100.0, path=("l1",)))
        sim.add_flow(FlowSpec("mid", size=1.0, path=("l2",), children=("leaf",)))
        sim.add_flow(FlowSpec("root", size=1.0, path=("l2",), children=("mid",)))
        result = sim.run()
        # 10s for the leaf, then 0.1s per downstream hop.
        assert result.records["root"].completion_time == pytest.approx(10.2)
        assert result.records["root"].fct == pytest.approx(0.1)

    def test_blocked_flow_ignores_own_start_time_once_armed(self):
        sim = FlowSim(two_link_network())
        sim.add_flow(FlowSpec("child", size=100.0, path=("l1",)))
        sim.add_flow(FlowSpec(
            "parent", size=10.0, path=("l2",), start_time=20.0,
            children=("child",),
        ))
        result = sim.run()
        # Admission waits for both the start time and the children.
        assert result.records["parent"].admitted_time == pytest.approx(20.0)

    def test_job_completion_time_is_last_flow(self):
        sim = FlowSim(two_link_network())
        sim.add_flow(FlowSpec("a", size=50.0, path=("l1",), job_id="j"))
        sim.add_flow(FlowSpec("b", size=100.0, path=("l2",), job_id="j"))
        result = sim.run()
        assert result.job_completion_times()["j"] == pytest.approx(10.0)


class TestAccounting:
    def test_link_bytes_equal_flow_sizes(self):
        sim = FlowSim(two_link_network())
        sim.add_flow(FlowSpec("a", size=70.0, path=("l1",)))
        sim.add_flow(FlowSpec("b", size=30.0, path=("l1", "l2")))
        result = sim.run()
        traffic = result.link_traffic()
        assert traffic["l1"] == pytest.approx(100.0)
        assert traffic["l2"] == pytest.approx(30.0)

    def test_fct_filters(self):
        sim = FlowSim(two_link_network())
        sim.add_flow(FlowSpec("w", size=10.0, path=("l1",), kind="worker",
                              aggregatable=True))
        sim.add_flow(FlowSpec("bg", size=10.0, path=("l2",)))
        result = sim.run()
        assert len(result.fcts()) == 2
        assert len(result.fcts(kinds=("worker",))) == 1
        assert len(result.fcts(aggregatable=False)) == 1


class TestConservationProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(1.0, 1000.0),   # size
                st.floats(0.0, 5.0),      # start time
                st.booleans(),            # uses l1
                st.booleans(),            # uses l2
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_fct_at_least_ideal_transfer_time(self, flow_rows):
        net = Network([Link("l1", 7.0), Link("l2", 13.0)])
        sim = FlowSim(net)
        for i, (size, start, use1, use2) in enumerate(flow_rows):
            path = tuple(
                l for l, used in (("l1", use1), ("l2", use2)) if used
            )
            sim.add_flow(FlowSpec(f"f{i}", size=size, start_time=start,
                                  path=path))
        result = sim.run()
        for i, (size, start, use1, use2) in enumerate(flow_rows):
            record = result.records[f"f{i}"]
            bottleneck = min(
                [7.0] * use1 + [13.0] * use2 + [float("inf")]
            )
            ideal = size / bottleneck if bottleneck != float("inf") else 0.0
            assert record.fct >= ideal - 1e-6

    @given(st.lists(st.floats(1.0, 100.0), min_size=1, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_single_link_completion_is_total_bytes(self, sizes):
        """With one shared link, the last completion equals total/capacity
        (work conservation of max-min sharing)."""
        net = Network([Link("l", 10.0)])
        sim = FlowSim(net)
        for i, size in enumerate(sizes):
            sim.add_flow(FlowSpec(f"f{i}", size=size, path=("l",)))
        result = sim.run()
        assert result.end_time == pytest.approx(sum(sizes) / 10.0)


class TestSolverBackends:
    """The ``solver=`` knob swaps the max-min backend without changing
    any observable simulation outcome."""

    def _workload(self):
        network = Network([Link("core", 10.0), Link("edge_a", 6.0),
                           Link("edge_b", 4.0)])
        specs = [
            FlowSpec("f1", size=30.0, path=("edge_a", "core")),
            FlowSpec("f2", size=20.0, path=("edge_b", "core"),
                     start_time=1.0),
            FlowSpec("f3", size=12.0, path=("core",), start_time=2.0,
                     rate_cap=3.0),
            FlowSpec("f4", size=8.0, path=("edge_a",), start_time=0.5,
                     children=("f5",)),
            FlowSpec("f5", size=5.0, path=("edge_b",)),
        ]
        return network, specs

    def _run(self, solver):
        network, specs = self._workload()
        sim = FlowSim(network, solver=solver)
        for spec in specs:
            sim.add_flow(spec)
        result = sim.run()
        return {fid: round(record.fct, 9)
                for fid, record in result.records.items()}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown solver backend"):
            FlowSim(two_link_network(), solver="bogus")

    def test_backends_agree_on_completion_times(self):
        pytest.importorskip("numpy")
        incremental = self._run("incremental")
        vectorized = self._run("vectorized")
        assert incremental == vectorized

    def test_auto_matches_incremental(self):
        assert self._run("auto") == self._run("incremental")
