"""Integration tests: every paper experiment regenerates with the right
shape (who wins, which way the curve bends) at QUICK/CI scale."""

import pytest

from repro.experiments import QUICK
from repro.experiments import (
    fig02_processing_rate,
    fig03_cost,
    fig06_fct_cdf,
    fig07_nonagg_cdf,
    fig08_output_ratio,
    fig09_link_traffic,
    fig10_agg_fraction,
    fig11_oversub,
    fig12_partial,
    fig13_10g_scaleout,
    fig14_stragglers,
    fig15_localtree,
    fig16_solr_throughput,
    fig17_solr_latency,
    fig18_solr_ratio,
    fig19_solr_tworack,
    fig20_solr_scaleout,
    fig21_solr_scaleup,
    fig22_hadoop_jobs,
    fig23_hadoop_ratio,
    fig24_hadoop_datasize,
    fig25_fair_fixed,
    fig26_fair_adaptive,
    tab01_loc,
)

# Several simulation figures are noisy at QUICK scale; shape assertions
# here use generous margins, EXPERIMENTS.md records DEFAULT-scale runs.


class TestSimulationFigures:
    def test_fig02_netagg_beats_rack(self):
        result = fig02_processing_rate.run(scale=QUICK)
        assert all(v < 1.1 for v in result.column("relative_p99"))

    def test_fig02_oversub_rows_present(self):
        result = fig02_processing_rate.run(scale=QUICK)
        assert set(result.column("oversubscription")) == {1.0, 4.0}

    def test_fig03_netagg_cheap_and_effective(self):
        result = fig03_cost.run(scale=QUICK)
        rows = {r["configuration"]: r for r in result.rows}
        # QUICK's box-to-host ratio is unrealistically high; the paper-
        # scale cost ratios are asserted in test_cost.py.  Here: ordering.
        assert rows["NetAgg"]["upgrade_cost_usd"] < \
            rows["Oversub-10G"]["upgrade_cost_usd"]
        assert rows["NetAgg"]["relative_p99"] < 1.0
        assert rows["Incremental-NetAgg"]["upgrade_cost_usd"] < \
            rows["NetAgg"]["upgrade_cost_usd"]
        assert rows["FullBisec-10G"]["upgrade_cost_usd"] == max(
            r["upgrade_cost_usd"] for r in result.rows
        )

    def test_fig06_rows(self):
        result = fig06_fct_cdf.run(scale=QUICK)
        strategies = result.column("strategy")
        assert strategies == ["rack", "binary", "chain", "netagg"]
        for row in result.rows:
            assert row["p50"] <= row["p99"] <= row["p100"]

    def test_fig07_netagg_helps_nonaggregatable(self):
        result = fig07_nonagg_cdf.run(scale=QUICK)
        rows = {r["strategy"]: r for r in result.rows}
        assert rows["netagg"]["p99"] <= rows["rack"]["p99"] * 1.15

    def test_fig08_netagg_benefit_decays_with_alpha(self):
        result = fig08_output_ratio.run(scale=QUICK)
        netagg = result.column("netagg")
        assert netagg[0] < 0.9  # strong win at alpha=5%
        assert netagg[-1] > netagg[0]  # benefit shrinks at alpha=100%

    def test_fig09_chain_carries_most_traffic(self):
        result = fig09_link_traffic.run(scale=QUICK)
        rows = {r["strategy"]: r for r in result.rows}
        assert rows["chain"]["median_vs_rack"] > \
            rows["netagg"]["median_vs_rack"]
        assert rows["chain"]["median_vs_rack"] > 1.05
        assert rows["netagg"]["median_vs_rack"] < 1.0

    def test_fig10_netagg_wins_at_full_aggregatability(self):
        result = fig10_agg_fraction.run(scale=QUICK)
        last = result.rows[-1]
        assert last["fraction"] == 1.0
        assert last["netagg"] < 1.0
        # More aggregatable traffic must not erode NetAgg's advantage.
        assert last["netagg"] <= result.rows[0]["netagg"] * 1.1

    def test_fig11_more_oversub_more_benefit(self):
        result = fig11_oversub.run(scale=QUICK)
        netagg = result.column("netagg")
        assert netagg[-1] < 1.0  # clear win at 16:1
        assert all(v < 1.2 for v in netagg)

    def test_fig12_full_deployment_best(self):
        result = fig12_partial.run(scale=QUICK)
        rows = {r["deployment"]: r["relative_p99"] for r in result.rows}
        assert rows["full"] <= min(rows["tor-only"], rows["aggr-only"],
                                   rows["core-only"]) * 1.05
        assert rows["full"] < 1.0

    def test_fig13_scale_out_helps_in_10g(self):
        result = fig13_10g_scaleout.run(scale=QUICK)
        for row in result.rows:
            assert row["x4_boxes"] <= row["x1_boxes"] * 1.1

    def test_fig14_benefit_decays_with_stragglers(self):
        result = fig14_stragglers.run(scale=QUICK)
        values = result.column("netagg_relative_p99")
        assert values[0] < 1.0
        # Stragglers erode (but need not erase) the benefit.
        assert values[-1] >= values[0] * 0.8


class TestTestbedFigures:
    def test_fig15_threads_raise_plateau(self):
        result = fig15_localtree.run(scale=QUICK)
        last = result.rows[-1]
        assert last["threads_32"] > last["threads_8"]
        first = result.rows[0]
        assert last["threads_32"] > first["threads_32"]

    def test_fig16_netagg_multiplies_throughput(self):
        result = fig16_solr_throughput.run(scale=QUICK)
        last = result.rows[-1]
        assert last["netagg_gbps"] > 5 * last["solr_gbps"]

    def test_fig17_netagg_lower_latency(self):
        result = fig17_solr_latency.run(scale=QUICK)
        row = result.rows[0]
        assert row["netagg_p99_s"] < row["solr_p99_s"]

    def test_fig18_alpha_sweep_decreasing(self):
        result = fig18_solr_ratio.run(scale=QUICK)
        series = result.column("netagg_gbps")
        assert series[0] > series[1] > series[2] * 0.99

    def test_fig19_two_racks_double(self):
        result = fig19_solr_tworack.run(scale=QUICK)
        for row in result.rows:
            assert row["two_racks_gbps"] == pytest.approx(
                2 * row["one_rack_gbps"], rel=0.25
            )

    def test_fig20_second_box_doubles(self):
        result = fig20_solr_scaleout.run(scale=QUICK)
        row = result.rows[0]
        assert row["two_boxes_gbps"] > 1.6 * row["one_box_gbps"]

    def test_fig21_categorise_scales_sample_flat(self):
        result = fig21_solr_scaleup.run(scale=QUICK)
        rows = {r["cores"]: r for r in result.rows}
        # Categorise is CPU-bound: near-linear core scaling.
        assert rows[16]["categorise_gbps"] > 3.0 * rows[2]["categorise_gbps"]
        # Sample is network-bound from a handful of cores on.
        assert rows[16]["sample_gbps"] == pytest.approx(
            rows[4]["sample_gbps"], rel=0.1
        )

    def test_fig22_job_character(self):
        result = fig22_hadoop_jobs.run(scale=QUICK)
        rows = {r["job"]: r for r in result.rows}
        assert rows["WC"]["relative_srt"] < 0.5  # big win
        assert rows["TS"]["relative_srt"] == pytest.approx(1.0)  # none
        assert rows["AP"]["relative_srt"] > rows["UV"]["relative_srt"]

    def test_fig23_relative_srt_rises_with_alpha(self):
        result = fig23_hadoop_ratio.run(scale=QUICK)
        series = result.column("relative_srt")
        assert series[0] < series[-1]
        alphas = result.column("measured_alpha")
        assert alphas[0] < alphas[-1]

    def test_fig24_speedup_grows_with_data(self):
        result = fig24_hadoop_datasize.run(scale=QUICK)
        speedups = result.column("speedup")
        assert speedups[-1] > speedups[0] > 1.5

    def test_fig25_fixed_weights_starve(self):
        result = fig25_fair_fixed.run(scale=QUICK)
        assert "solr=0.9" in result.notes or float(
            result.notes.split("solr=")[1].split()[0]) > 0.85

    def test_fig26_adaptive_restores_fairness(self):
        result = fig26_fair_adaptive.run(scale=QUICK)
        solr_share = float(result.notes.split("solr=")[1].split()[0])
        assert solr_share == pytest.approx(0.5, abs=0.08)

    def test_tab01_plugins_are_small(self):
        result = tab01_loc.run(scale=QUICK)
        rows = [r for r in result.rows
                if r["role"] == "box serialisation + wrapper"]
        assert rows
        for row in rows:
            assert row["loc"] < 300  # a few hundred lines, as in Table 1


class TestExtraAblations:
    def test_fattree_more_trees_never_worse(self):
        from repro.experiments import ablation_fattree

        result = ablation_fattree.run(scale=QUICK)
        values = result.column("relative_p99")
        assert values[1] <= values[0] * 1.05

    def test_reducers_ablation_decays(self):
        from repro.experiments import ablation_reducers

        result = ablation_reducers.run(scale=QUICK)
        speedups = result.column("speedup")
        assert speedups[0] > speedups[1] > 1.0

    def test_arrivals_ablation_is_robust(self):
        from repro.experiments import ablation_arrivals

        result = ablation_arrivals.run(scale=QUICK)
        values = result.column("netagg_relative_p99")
        assert all(v < 1.1 for v in values)
        # The paper: dynamic arrival patterns give comparable results.
        assert max(values) < 3 * min(values)

    def test_fig06_cdfs_helper(self):
        from repro.experiments.fig06_fct_cdf import cdfs

        series = cdfs(scale=QUICK)
        assert set(series) == {"rack", "binary", "chain", "netagg"}
        for points in series.values():
            fractions = [f for _, f in points]
            assert fractions == sorted(fractions)
            assert fractions[-1] == pytest.approx(1.0)


class TestFigFailures:
    def test_quick_shape_and_exactness(self):
        from repro.experiments import fig_failures

        result = fig_failures.run(scale=QUICK, fault_rates=(0.0, 0.2))
        rates = result.column("fault_rate")
        assert rates == [0.0, 0.2]
        degradations = result.column("netagg_degradation")
        assert degradations[0] == pytest.approx(1.0)
        # Faults may only slow aggregation down, never corrupt it.  The
        # FCT shift is noisy at QUICK scale (a reroute can even land a
        # tail flow on a quieter path), so only exactness is strict.
        assert all(result.column("exact"))
        assert all(0.2 < d < 20.0 for d in degradations)

    def test_quick_deterministic(self):
        from repro.experiments import fig_failures

        a = fig_failures.run(scale=QUICK, seed=5, fault_rates=(0.2,))
        b = fig_failures.run(scale=QUICK, seed=5, fault_rates=(0.2,))
        assert a.rows == b.rows


class TestLegacyEntrypoints:
    """The ad-hoc-keyword shim is retired: legacy calls fail loudly.

    Figure modules used to forward ``run(clients=..., duration=...)``
    through a ``DeprecationWarning`` shim; the shim is now a hard
    ``TypeError`` carrying a migration hint to the canonical
    ``run(scale=..., seed=...)`` signature.
    """

    def test_adhoc_kwargs_raise_type_error(self):
        with pytest.raises(TypeError,
                           match="fig16_solr_throughput.run"):
            fig16_solr_throughput.run(clients=(10,), duration=5.0)

    def test_error_names_the_offending_knobs_and_the_fix(self):
        with pytest.raises(TypeError) as excinfo:
            fig16_solr_throughput.run(clients=(10,), duration=5.0)
        message = str(excinfo.value)
        assert "clients" in message and "duration" in message
        assert "run(scale=..., seed=...)" in message

    def test_seed_merging_variant_also_raises(self):
        # Modules that used to merge {"seed": seed, **knobs} into the
        # shim must reject the ad-hoc knob but still name only *it*
        # (seed stays a canonical argument).
        with pytest.raises(TypeError) as excinfo:
            fig22_hadoop_jobs.run(intermediate_bytes=1e6)
        assert "intermediate_bytes" in str(excinfo.value)
        assert "seed" not in str(excinfo.value).split("(")[1].split(")")[0]

    def test_canonical_call_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = tab01_loc.run(scale=QUICK)
        assert result.rows

    def test_canonical_seed_still_accepted(self):
        result = fig16_solr_throughput.run(scale=QUICK, seed=2)
        assert result.rows


class TestFigOverload:
    def test_quick_registered(self):
        from repro.experiments import load

        exp = load("fig_overload")
        assert exp.name == "fig_overload"
        assert "overload" in exp.summary

    def test_quick_graceful_with_control(self):
        from repro.experiments import fig_overload

        result = fig_overload.run(scale=QUICK, loads=(0.5, 3.0))
        assert result.column("load") == [0.5, 3.0]
        for row in result.rows:
            for column in ("ctrl_goodput", "nc_goodput", "edge_goodput"):
                assert 0.0 <= row[column] <= 1.0
        # At the heaviest load the admission/re-planning arm must hold
        # goodput at least as well as the uncontrolled arm (graceful
        # degradation vs the cliff).
        heavy = result.rows[-1]
        assert heavy["ctrl_goodput"] >= heavy["nc_goodput"]

    def test_quick_deterministic(self):
        from repro.experiments import fig_overload

        a = fig_overload.run(scale=QUICK, seed=3, loads=(2.0,))
        b = fig_overload.run(scale=QUICK, seed=3, loads=(2.0,))
        assert a.rows == b.rows
