"""Tests for the aggregation functions (associativity, sizes, costs)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggbox.functions import (
    CategoriseFunction,
    CombinerFunction,
    MaxFunction,
    SampleFunction,
    SumFunction,
    TopKFunction,
)
from repro.aggbox.localtree import tree_aggregate
from repro.wire.records import KeyValue, SearchResult


def results_from(scores):
    return [SearchResult(i, float(s)) for i, s in enumerate(scores)]


class TestTopK:
    def test_merge_keeps_best(self):
        fn = TopKFunction(k=2)
        merged = fn.merge([results_from([1, 5]), results_from([3])])
        assert [r.score for r in merged] == [5.0, 3.0]

    def test_k_validation(self):
        with pytest.raises(ValueError):
            TopKFunction(k=0)

    def test_identity_is_empty(self):
        assert TopKFunction(k=3).identity() == []

    def test_deterministic_tie_break(self):
        fn = TopKFunction(k=2)
        a = [SearchResult(1, 1.0), SearchResult(2, 1.0)]
        merged = fn.merge([a])
        assert [r.doc_id for r in merged] == [1, 2]

    def test_output_bytes_bounded_by_one_partial(self):
        fn = TopKFunction(k=5)
        assert fn.output_bytes([100.0, 80.0, 120.0]) == 120.0

    @given(st.lists(st.lists(st.floats(0, 100), max_size=8), max_size=6),
           st.integers(1, 5))
    @settings(max_examples=100)
    def test_tree_merge_equals_flat_merge(self, partials, k):
        fn = TopKFunction(k=k)
        items = [results_from(scores) for scores in partials]
        flat = fn.merge(items)
        tree = tree_aggregate(fn, items)
        assert [(r.doc_id, r.score) for r in flat] == \
            [(r.doc_id, r.score) for r in tree]


class TestCombiner:
    def test_merge_sums_per_key(self):
        fn = CombinerFunction()
        merged = fn.merge([
            [KeyValue("a", 1), KeyValue("b", 2)],
            [KeyValue("a", 3)],
        ])
        assert merged == [KeyValue("a", 4), KeyValue("b", 2)]

    def test_merge_sorted_by_key(self):
        fn = CombinerFunction()
        merged = fn.merge([[KeyValue("z", 1), KeyValue("a", 1)]])
        assert [p.key for p in merged] == ["a", "z"]

    def test_output_bytes_dictionary_bound(self):
        fn = CombinerFunction(alpha=0.1, total_bytes=1000.0)
        assert fn.output_bytes([400.0, 400.0]) == pytest.approx(100.0)
        assert fn.output_bytes([30.0]) == pytest.approx(30.0)

    def test_output_bytes_without_total(self):
        fn = CombinerFunction(alpha=0.2)
        assert fn.output_bytes([100.0]) == pytest.approx(20.0)

    @given(st.lists(
        st.lists(st.tuples(st.sampled_from("abcde"), st.integers(0, 50)),
                 max_size=10),
        min_size=1, max_size=6,
    ))
    @settings(max_examples=100)
    def test_tree_merge_equals_flat_merge(self, raw):
        fn = CombinerFunction()
        items = [[KeyValue(k, v) for k, v in part] for part in raw]
        assert tree_aggregate(fn, items) == fn.merge(items)

    def test_custom_reduce(self):
        class MaxCombiner(CombinerFunction):
            def reduce(self, key, values):
                return max(values)

        merged = MaxCombiner().merge([[KeyValue("a", 1)], [KeyValue("a", 9)]])
        assert merged == [KeyValue("a", 9)]


class TestSample:
    def test_output_ratio_respected(self):
        fn = SampleFunction(alpha=0.1)
        merged = fn.merge([list(range(50)), list(range(50))])
        assert len(merged) == pytest.approx(10, abs=1)

    def test_empty(self):
        assert SampleFunction(alpha=0.5).merge([]) == []

    def test_output_bytes(self):
        assert SampleFunction(alpha=0.25).output_bytes([100, 100]) == 50.0

    def test_cheap_cpu_factor(self):
        assert SampleFunction().cpu_factor < 1.0

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            SampleFunction(alpha=0.0)


class TestCategorise:
    def test_classify_majority(self):
        fn = CategoriseFunction()
        assert fn.classify("science science history") == "science"

    def test_merge_groups_by_category(self):
        fn = CategoriseFunction(k=1)
        merged = fn.merge([
            [("all about science science", 1.0, "")],
            [("history history text", 2.0, "")],
        ])
        categories = {c for _, _, c in merged}
        assert categories == {"science", "history"}

    def test_topk_per_category(self):
        fn = CategoriseFunction(k=1)
        merged = fn.merge([
            [("science one science", 1.0, "science"),
             ("science two science", 5.0, "science")],
        ])
        assert len(merged) == 1
        assert merged[0][1] == 5.0

    def test_expensive_cpu_factor(self):
        assert CategoriseFunction.cpu_factor > 5.0

    def test_output_bytes_bounded(self):
        fn = CategoriseFunction(k=2)
        bound = fn.output_bytes([1e9])
        assert bound < 1e9


class TestScalars:
    def test_sum(self):
        assert SumFunction().merge([1.0, 2.0, 3.5]) == 6.5

    def test_max(self):
        assert MaxFunction().merge([1.0, 9.0, 3.0]) == 9.0

    def test_max_identity(self):
        assert MaxFunction().identity() == float("-inf")

    def test_cpu_seconds_scales_with_bytes(self):
        fn = SumFunction()
        assert fn.cpu_seconds(2000.0) == pytest.approx(
            2 * fn.cpu_seconds(1000.0)
        )

    def test_cpu_seconds_negative_rejected(self):
        with pytest.raises(ValueError):
            SumFunction().cpu_seconds(-1.0)
