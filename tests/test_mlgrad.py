"""Tests for distributed gradient aggregation (the third domain app)."""

import pytest

from repro.aggbox.localtree import tree_aggregate
from repro.aggregation import deploy_boxes
from repro.apps.mlgrad import (
    VectorSumFunction,
    decode_vector,
    encode_vector,
    local_gradient,
    make_regression_data,
    netagg_aggregator,
    train,
)
from repro.core import NetAggPlatform
from repro.topology import ThreeTierParams, three_tier

TRUE_WEIGHTS = [2.0, -1.0, 0.5]
SMALL = ThreeTierParams(
    n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2, hosts_per_tor=4
)
WORKER_HOSTS = ["host:1", "host:4", "host:8", "host:12"]


def make_shards(n=400, noise=0.0, seed=3):
    rows = make_regression_data(n, TRUE_WEIGHTS, noise=noise, seed=seed)
    return [rows[i::4] for i in range(4)]


class TestVectorSum:
    def test_merge_sums_elementwise(self):
        fn = VectorSumFunction()
        assert fn.merge([[1.0, 2.0], [3.0, 4.0]]) == [4.0, 6.0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            VectorSumFunction().merge([[1.0], [1.0, 2.0]])

    def test_empty(self):
        assert VectorSumFunction().merge([]) == []

    def test_tree_merge_close_to_flat(self):
        fn = VectorSumFunction()
        vectors = [[float(i), float(-i)] for i in range(9)]
        flat = fn.merge(vectors)
        tree = tree_aggregate(fn, vectors)
        assert tree == pytest.approx(flat)

    def test_codec_roundtrip(self):
        vector = [0.5, -1.25, 3e9, 0.0]
        assert decode_vector(encode_vector(vector)) == vector

    def test_output_bytes_is_one_vector(self):
        fn = VectorSumFunction()
        assert fn.output_bytes([80.0, 80.0, 80.0]) == 80.0


class TestTraining:
    def test_learns_true_weights(self):
        result = train(make_shards(), n_features=3, iterations=200,
                       learning_rate=0.1)
        for learned, true in zip(result.weights, TRUE_WEIGHTS):
            assert learned == pytest.approx(true, abs=1e-3)

    def test_loss_decreases(self):
        result = train(make_shards(noise=0.05), n_features=3,
                       iterations=50)
        assert result.losses[-1] < result.losses[0] / 10

    def test_gradient_matches_analytic(self):
        rows = [([1.0, 0.0], 3.0)]
        grad = local_gradient([0.0, 0.0], rows)
        # d/dw of (w.x - y)^2 at w=0: 2 * (-3) * x = [-6, 0].
        assert grad == pytest.approx([-6.0, 0.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            train([], n_features=3)
        with pytest.raises(ValueError):
            train(make_shards(), n_features=3, iterations=0)


class TestOnPathTraining:
    def make_platform(self):
        topo = three_tier(SMALL)
        deploy_boxes(topo)
        return NetAggPlatform(topo)

    def test_netagg_training_matches_central(self):
        shards = make_shards(noise=0.02)
        central = train(shards, n_features=3, iterations=30)

        platform = self.make_platform()
        aggregate = netagg_aggregator(platform, "host:0", WORKER_HOSTS)
        on_path = train(shards, n_features=3, iterations=30,
                        aggregate=aggregate)
        for a, b in zip(central.weights, on_path.weights):
            assert a == pytest.approx(b, abs=1e-9)
        assert on_path.final_loss == pytest.approx(central.final_loss,
                                                   rel=1e-6)

    def test_every_step_is_one_request(self):
        platform = self.make_platform()
        aggregate = netagg_aggregator(platform, "host:0", WORKER_HOSTS)
        train(make_shards(), n_features=3, iterations=5,
              aggregate=aggregate)
        # Five steps -> five distinct requests on the entry boxes.
        counted = set()
        for info in platform.topology.all_boxes():
            runtime = platform.box_runtime(info.box_id)
            for step in range(5):
                if runtime.last_processed("mlgrad",
                                          f"grad-step-{step}@t0"):
                    counted.add(step)
        assert counted == set(range(5))

    def test_gradient_count_must_match_workers(self):
        platform = self.make_platform()
        aggregate = netagg_aggregator(platform, "host:0", WORKER_HOSTS)
        with pytest.raises(ValueError):
            aggregate(0, [[1.0]])
