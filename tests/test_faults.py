"""Tests for the deterministic fault-injection layer (repro.faults).

Covers the schedule/retry primitives, the three per-layer injectors
(flow simulator, functional platform, testbed emulator), and the
property-style guarantee the layer exists for: under randomized seeded
fault schedules the platform's aggregates stay byte-identical to a
centralised computation while the shims retry and degrade gracefully.
"""

import pytest

from repro.aggbox.functions import SearchResult, TopKFunction
from repro.aggregation import NetAggStrategy, deploy_boxes
from repro.cluster.emulator import Resource
from repro.core.platform import NetAggPlatform
from repro.faults import (
    BOX_CRASH,
    BOX_DEGRADE,
    BOX_RECOVER,
    LINK_DOWN,
    LINK_UP,
    WORKER_CHURN,
    EmulatorFaultInjector,
    FaultEvent,
    FaultSchedule,
    PlatformFaultInjector,
    RetryPolicy,
    SimFaultInjector,
)
from repro.netsim.engine import EventQueue
from repro.netsim.simulator import FlowSim
from repro.topology.threetier import ThreeTierParams, three_tier
from repro.wire.records import decode_search_results, encode_search_results
from repro.workload.synthetic import WorkloadParams, generate_workload

SMALL = ThreeTierParams(
    n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2, hosts_per_tor=4
)


def small_topo():
    topo = three_tier(SMALL)
    deploy_boxes(topo)
    return topo


# ---------------------------------------------------------------------------
# FaultSchedule


class TestFaultSchedule:
    def test_events_kept_sorted(self):
        sched = FaultSchedule([
            FaultEvent(2.0, BOX_CRASH, "b"),
            FaultEvent(1.0, LINK_DOWN, "l"),
        ])
        sched.add(FaultEvent(1.5, LINK_UP, "l"))
        assert [e.time for e in sched] == [1.0, 1.5, 2.0]
        assert sched.horizon == 2.0

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(-1.0, BOX_CRASH, "b")
        with pytest.raises(ValueError):
            FaultEvent(0.0, "meteor-strike", "b")
        with pytest.raises(ValueError):
            FaultEvent(0.0, BOX_CRASH, "")
        with pytest.raises(ValueError):
            FaultEvent(0.0, BOX_DEGRADE, "b", severity=0.0)

    def test_crashed_at_tracks_recovery(self):
        sched = FaultSchedule([
            FaultEvent(1.0, BOX_CRASH, "b1"),
            FaultEvent(2.0, BOX_RECOVER, "b1"),
            FaultEvent(3.0, BOX_CRASH, "b2"),
        ])
        assert sched.crashed_at(0.5) == set()
        assert sched.crashed_at(1.0) == {"b1"}
        assert sched.crashed_at(2.5) == set()
        assert sched.crashed_at(3.5) == {"b2"}

    def test_links_down_at(self):
        sched = FaultSchedule([
            FaultEvent(1.0, LINK_DOWN, "l1"),
            FaultEvent(2.0, LINK_UP, "l1"),
        ])
        assert sched.links_down_at(1.5) == {"l1"}
        assert sched.links_down_at(2.0) == set()

    def test_degradation_cleared_by_recover(self):
        sched = FaultSchedule([
            FaultEvent(1.0, BOX_DEGRADE, "b1", severity=4.0),
            FaultEvent(3.0, BOX_RECOVER, "b1"),
        ])
        assert sched.degradation_at("b1", 0.5) == 1.0
        assert sched.degradation_at("b1", 2.0) == 4.0
        assert sched.degradation_at("b1", 3.5) == 1.0
        assert sched.degradation_at("other", 2.0) == 1.0

    def test_churn_window(self):
        sched = FaultSchedule([
            FaultEvent(1.0, WORKER_CHURN, "worker:3", duration=2.0),
        ])
        assert sched.churn_until("worker:3", 0.5) is None
        assert sched.churn_until("worker:3", 1.5) == 3.0
        assert sched.churn_until("worker:3", 3.5) is None
        assert sched.churn_until("worker:0", 1.5) is None

    def test_permanent_crashes(self):
        sched = FaultSchedule([
            FaultEvent(1.0, BOX_CRASH, "b1"),
            FaultEvent(2.0, BOX_CRASH, "b2"),
            FaultEvent(3.0, BOX_RECOVER, "b2"),
        ])
        assert sched.permanent_crashes() == {"b1": 1.0}

    def test_generate_deterministic(self):
        kwargs = dict(duration=10.0, boxes=["b1", "b2", "b3"],
                      links=["l1", "l2"], workers=4, box_crashes=3,
                      link_flaps=2, degradations=1, churns=1, skews=1)
        a = FaultSchedule.generate(seed=42, **kwargs)
        b = FaultSchedule.generate(seed=42, **kwargs)
        c = FaultSchedule.generate(seed=43, **kwargs)
        assert a.events == b.events
        assert a.events != c.events

    def test_generate_link_faults_always_flap(self):
        sched = FaultSchedule.generate(seed=7, duration=10.0,
                                       links=["l1", "l2"], link_flaps=5)
        downs = sched.events_for(kind=LINK_DOWN)
        ups = sched.events_for(kind=LINK_UP)
        assert len(downs) == len(ups) == 5

    def test_generate_validates_targets(self):
        with pytest.raises(ValueError):
            FaultSchedule.generate(seed=1, duration=1.0, box_crashes=1)
        with pytest.raises(ValueError):
            FaultSchedule.generate(seed=1, duration=1.0, link_flaps=1)
        with pytest.raises(ValueError):
            FaultSchedule.generate(seed=1, duration=0.0)


# ---------------------------------------------------------------------------
# RetryPolicy


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_backoff=0.01, multiplier=2.0,
                             max_backoff=0.03, jitter=0.0, max_attempts=6)
        delays = policy.delays()
        assert delays == [0.01, 0.02, 0.03, 0.03, 0.03]

    def test_jitter_bounded_and_deterministic(self):
        policy = RetryPolicy(jitter=0.5)
        for attempt in (1, 2):
            raw = RetryPolicy(jitter=0.0).backoff(attempt)
            jittered = policy.backoff(attempt, key="w0->box:a")
            assert raw * 0.5 <= jittered <= raw
            assert jittered == policy.backoff(attempt, key="w0->box:a")
        assert policy.backoff(1, key="a") != policy.backoff(1, key="b")

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff=0.5, max_backoff=0.1)
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0)

    def test_worst_case_clock(self):
        policy = RetryPolicy(timeout=0.1, max_attempts=2, base_backoff=0.05,
                             max_backoff=0.05, jitter=0.0)
        assert policy.worst_case_clock() == pytest.approx(0.25)


# ---------------------------------------------------------------------------
# Simulator injection


def _netagg_sim(topo, schedule, seed=3, n_flows=25):
    workload = generate_workload(
        topo, WorkloadParams(n_flows=n_flows), seed=seed)
    injector = SimFaultInjector(topo, schedule)
    strategy = NetAggStrategy(fault_view=injector.fault_view)
    sim = FlowSim(topo.network)
    sim.add_flows(strategy.plan(workload, topo))
    injector.apply(sim, workload)
    return sim, workload


class TestSimFaultInjector:
    def test_capacity_events_cover_box_links(self):
        topo = small_topo()
        box = sorted(i.box_id for i in topo.all_boxes())[0]
        info = topo.box(box)
        sched = FaultSchedule([
            FaultEvent(1.0, BOX_CRASH, box),
            FaultEvent(2.0, BOX_RECOVER, box),
        ])
        events = SimFaultInjector(topo, sched).capacity_events(topo.network)
        downed = {link for when, link, cap in events if cap == 0.0}
        assert downed == {info.downlink, info.uplink, info.proc_link}
        restored = {link: cap for when, link, cap in events if when == 2.0}
        base = topo.network.capacities()
        assert restored == {link: base[link] for link in downed}

    def test_unknown_targets_skipped(self):
        topo = three_tier(SMALL)  # no boxes deployed
        sched = FaultSchedule([
            FaultEvent(1.0, BOX_CRASH, "box:tor:0:0"),
            FaultEvent(1.0, LINK_DOWN, "no-such-link"),
        ])
        assert SimFaultInjector(topo, sched).capacity_events(
            topo.network) == []

    def test_degrade_scales_proc_link(self):
        topo = small_topo()
        box = sorted(i.box_id for i in topo.all_boxes())[0]
        info = topo.box(box)
        sched = FaultSchedule([
            FaultEvent(1.0, BOX_DEGRADE, box, severity=4.0),
        ])
        events = SimFaultInjector(topo, sched).capacity_events(topo.network)
        base = topo.network.capacities()[info.proc_link]
        assert events == [(1.0, info.proc_link, base / 4.0)]

    def test_permanent_crash_mid_run_completes_via_reroutes(self):
        topo = small_topo()
        # Find a box actually used by the fault-free plan, then crash it
        # permanently at ~30% of the fault-free makespan.
        sim0, _ = _netagg_sim(topo, FaultSchedule())
        base = sim0.run()
        used = sorted({
            link.split("proc:")[1]
            for record in base.records.values()
            for link in record.spec.path if link.startswith("proc:")
        })
        end = max(r.drain_time for r in base.records.values())
        sched = FaultSchedule([FaultEvent(0.3 * end, BOX_CRASH, used[0])])

        topo2 = small_topo()
        sim, _ = _netagg_sim(topo2, sched)
        result = sim.run()  # would raise on stalled flows
        assert len(result.records) == len(base.records)

        topo3 = small_topo()
        sim2, _ = _netagg_sim(topo3, sched)
        again = sim2.run()
        assert {f: r.drain_time for f, r in result.records.items()} == \
            {f: r.drain_time for f, r in again.records.items()}

    def test_unrecovered_link_stalls_with_diagnostic(self):
        topo = small_topo()
        sim, _ = _netagg_sim(topo, FaultSchedule())
        flow = next(iter(sim.flow_ids()))
        link = sim.spec(flow).path[0]
        sim.add_capacity_event(0.0, link, 0.0)
        with pytest.raises(RuntimeError, match="down links"):
            sim.run()

    def test_transient_crash_rides_through(self):
        """A crash that recovers needs no reroutes -- flows wait it out."""
        topo = small_topo()
        sim0, _ = _netagg_sim(topo, FaultSchedule())
        base = sim0.run()
        used = sorted({
            link.split("proc:")[1]
            for record in base.records.values()
            for link in record.spec.path if link.startswith("proc:")
        })
        end = max(r.drain_time for r in base.records.values())
        sched = FaultSchedule([
            FaultEvent(0.3 * end, BOX_CRASH, used[0]),
            FaultEvent(0.6 * end, BOX_RECOVER, used[0]),
        ])
        assert not sched.permanent_crashes()
        topo2 = small_topo()
        sim, _ = _netagg_sim(topo2, sched)
        result = sim.run()
        assert len(result.records) == len(base.records)
        faulted_end = max(r.drain_time for r in result.records.values())
        assert faulted_end >= end


# ---------------------------------------------------------------------------
# Platform injection


def _solr_platform(faults=None, retry=None):
    topo = small_topo()
    platform = NetAggPlatform(topo, faults=faults, retry=retry)
    platform.register_app("solr", TopKFunction(k=3),
                          encode_search_results, decode_search_results)
    return platform


def _solr_partials(hosts=("host:1", "host:4", "host:8", "host:12")):
    return [
        (host, [SearchResult(i * 10 + j, float(i * 10 + j))
                for j in range(5)])
        for i, host in enumerate(hosts)
    ]


class TestPlatformFaults:
    def test_no_faults_no_events(self):
        outcome = _solr_platform().execute_request(
            "solr", "r1", "host:0", _solr_partials())
        assert outcome.shim_events == []

    def test_crashed_boxes_rewired_with_retries(self):
        partials = _solr_partials()
        base = _solr_platform().execute_request("solr", "r1", "host:0",
                                                partials)
        victims = base.boxes_used[:2]
        sched = FaultSchedule([FaultEvent(0.0, BOX_CRASH, v)
                               for v in victims])
        platform = _solr_platform(faults=PlatformFaultInjector(sched))
        outcome = platform.execute_request("solr", "r1", "host:0", partials)
        assert outcome.value == base.value
        assert outcome.events_of_kind("retry")
        assert {e.target for e in outcome.events_of_kind("unreachable")} \
            == set(victims)
        assert not set(victims) & set(outcome.boxes_used)
        assert platform.clock > 0.0

    def test_retry_rides_through_recovery_during_backoff(self):
        partials = _solr_partials()
        base = _solr_platform().execute_request("solr", "r1", "host:0",
                                                partials)
        victim = base.boxes_used[0]
        policy = RetryPolicy()
        sched = FaultSchedule([
            FaultEvent(0.0, BOX_CRASH, victim),
            FaultEvent(policy.timeout * 1.5, BOX_RECOVER, victim),
        ])
        outcome = _solr_platform(
            faults=PlatformFaultInjector(sched)).execute_request(
            "solr", "r1", "host:0", partials)
        assert outcome.value == base.value
        assert outcome.events_of_kind("retry")
        assert not outcome.events_of_kind("unreachable")
        assert victim in outcome.boxes_used

    def test_entry_box_crash_falls_back_or_bypasses(self):
        partials = _solr_partials()
        platform = _solr_platform()
        base = platform.execute_request("solr", "r1", "host:0", partials)
        # Crash every box used: all workers must bypass to the master.
        sched = FaultSchedule([FaultEvent(0.0, BOX_CRASH, b)
                               for b in base.boxes_used])
        outcome = _solr_platform(
            faults=PlatformFaultInjector(sched)).execute_request(
            "solr", "r1", "host:0", partials)
        assert outcome.value == base.value
        assert outcome.events_of_kind("fallback") or \
            outcome.events_of_kind("bypass")

    def test_degradation_recorded_and_charges_clock(self):
        partials = _solr_partials()
        base = _solr_platform().execute_request("solr", "r1", "host:0",
                                                partials)
        victim = base.boxes_used[0]
        sched = FaultSchedule([
            FaultEvent(0.0, BOX_DEGRADE, victim, severity=5.0),
        ])
        healthy = _solr_platform(faults=PlatformFaultInjector(
            FaultSchedule()))
        degraded = _solr_platform(faults=PlatformFaultInjector(sched))
        out_h = healthy.execute_request("solr", "r1", "host:0", partials)
        out_d = degraded.execute_request("solr", "r1", "host:0", partials)
        assert out_d.value == base.value == out_h.value
        assert out_d.events_of_kind("degraded")
        assert degraded.clock > healthy.clock

    def test_churning_worker_waits_out_window(self):
        partials = _solr_partials()
        sched = FaultSchedule([
            FaultEvent(0.0, WORKER_CHURN, "worker:1", duration=2.5),
        ])
        platform = _solr_platform(faults=PlatformFaultInjector(sched))
        outcome = platform.execute_request("solr", "r1", "host:0", partials)
        assert outcome.events_of_kind("churn")
        assert platform.clock >= 2.5
        base = _solr_platform().execute_request("solr", "r1", "host:0",
                                                partials)
        assert outcome.value == base.value

    def test_property_random_schedules_stay_byte_exact(self):
        """Seeded random schedules with >= 2 box crashes and >= 1 link
        flap: the aggregate equals the centralised merge byte for byte
        and at least one retry or fallback was recorded."""
        partials = _solr_partials()
        function = TopKFunction(k=3)
        expected = function.merge([value for _, value in partials])
        links = sorted(
            link.link_id for link in small_topo().network.wire_links()
            if "->core:" in link.link_id
        )
        for seed in range(10):
            # Victims must sit on the tree this request will actually
            # use (tree choice hashes the request id), so derive them
            # from a fault-free run of the same request.
            base = _solr_platform().execute_request(
                "solr", f"r{seed}", "host:0", partials)
            sched = FaultSchedule.generate(
                seed=seed, duration=0.5, boxes=base.boxes_used,
                links=links, workers=len(partials),
                box_crashes=2 + seed % 2, link_flaps=1 + seed % 2,
                degradations=seed % 2, churns=seed % 3,
                permanent_fraction=1.0,
            )
            crashes = sched.events_for(kind=BOX_CRASH)
            assert len(crashes) >= 2
            platform = _solr_platform(faults=PlatformFaultInjector(sched))
            # Start the request inside the first crash's window so the
            # shims actually face a dead box.
            platform.advance_clock(crashes[0].time)
            outcome = platform.execute_request(
                "solr", f"r{seed}", "host:0", partials)
            assert outcome.value == expected, f"seed {seed} diverged"
            degraded = (outcome.events_of_kind("retry")
                        + outcome.events_of_kind("fallback")
                        + outcome.events_of_kind("bypass"))
            assert degraded, f"seed {seed} recorded no degradation"
            # Bit-reproducible: same schedule, same outcome and events.
            platform2 = _solr_platform(faults=PlatformFaultInjector(sched))
            platform2.advance_clock(crashes[0].time)
            outcome2 = platform2.execute_request(
                "solr", f"r{seed}", "host:0", partials)
            assert outcome2.value == outcome.value
            assert outcome2.shim_events == outcome.shim_events

    def test_batch_execution_under_faults(self):
        base_platform = _solr_platform()
        keyed = [
            (host, [(f"k{i}:{j}", SearchResult(i * 10 + j,
                                               float(i * 10 + j)))
                    for j in range(4)])
            for i, host in enumerate(("host:1", "host:4", "host:8"))
        ]
        base = base_platform.execute_batch("solr", "job", "host:0", keyed,
                                           n_trees=2)
        sched = FaultSchedule([FaultEvent(0.0, BOX_CRASH, b)
                               for b in base.boxes_used[:2]])
        outcome = _solr_platform(
            faults=PlatformFaultInjector(sched)).execute_batch(
            "solr", "job", "host:0", keyed, n_trees=2)
        assert outcome.value == base.value


# ---------------------------------------------------------------------------
# Emulator injection


class TestEmulatorFaults:
    def test_fail_parks_and_replays_in_order(self):
        queue = EventQueue()
        nic = Resource(queue, "nic", rate=100.0)
        dones = []
        nic.request(100.0, lambda: dones.append(("a", queue.now)))
        nic.request(50.0, lambda: dones.append(("b", queue.now)))
        sched = FaultSchedule([
            FaultEvent(0.4, BOX_CRASH, "nic"),
            FaultEvent(0.9, BOX_RECOVER, "nic"),
        ])
        assert EmulatorFaultInjector(sched).arm(queue, {"nic": nic}) == 2
        queue.run()
        # "a" restarts from scratch at 0.9 (replay, not resume).
        assert dones == [("a", pytest.approx(1.9)),
                         ("b", pytest.approx(2.4))]
        assert nic.failures == 1
        # busy_time counts the 0.4s of wasted pre-crash work.
        assert nic.busy_time == pytest.approx(0.4 + 1.0 + 0.5)

    def test_fail_idempotent_and_down_blocks_dispatch(self):
        queue = EventQueue()
        cpu = Resource(queue, "cpu", rate=1.0)
        cpu.fail()
        cpu.fail()
        assert cpu.failures == 1
        assert cpu.is_down
        done = []
        cpu.request(1.0, lambda: done.append(queue.now))
        queue.run()
        assert done == []  # nothing dispatches while down
        cpu.recover()
        queue.run()
        assert done == [pytest.approx(1.0)]

    def test_degrade_slows_future_dispatches(self):
        queue = EventQueue()
        nic = Resource(queue, "nic", rate=10.0)
        sched = FaultSchedule([
            FaultEvent(0.0, BOX_DEGRADE, "nic", severity=2.0),
        ])
        EmulatorFaultInjector(sched).arm(queue, {"nic": nic})
        done = []
        queue.schedule_at(0.1, lambda: nic.request(
            10.0, lambda: done.append(queue.now)))
        queue.run()
        assert done == [pytest.approx(2.1)]  # 10 units at rate 5
        nic.recover()
        assert nic.rate == 10.0

    def test_unmatched_targets_not_armed(self):
        queue = EventQueue()
        sched = FaultSchedule([FaultEvent(1.0, BOX_CRASH, "ghost")])
        assert EmulatorFaultInjector(sched).arm(queue, {}) == 0
        assert len(queue) == 0

    def test_multi_server_fail_refunds_unserved_time(self):
        queue = EventQueue()
        pool = Resource(queue, "cpu", rate=1.0, servers=2)
        done = []
        pool.request(2.0, lambda: done.append(queue.now))
        pool.request(2.0, lambda: done.append(queue.now))
        queue.schedule_at(1.0, pool.fail)
        queue.schedule_at(1.5, pool.recover)
        queue.run()
        assert done == [pytest.approx(3.5), pytest.approx(3.5)]
        # 2 servers x 1s real pre-crash work + 2 x 2s replays.
        assert pool.busy_time == pytest.approx(2.0 + 4.0)
