"""Tests for topology builders and path enumeration."""

import pytest

from repro.netsim.routing import EcmpRouter
from repro.topology import ThreeTierParams, fat_tree, three_tier
from repro.topology.base import AGGR, CORE, TOR, Node, Topology
from repro.topology.threetier import attach_boxes_everywhere
from repro.units import Gbps

SMALL = ThreeTierParams(
    n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2, hosts_per_tor=4
)


class TestThreeTierStructure:
    def test_counts(self):
        topo = three_tier(SMALL)
        assert len(topo.hosts()) == SMALL.n_hosts == 16
        assert len(topo.switches(TOR)) == 4
        assert len(topo.switches(AGGR)) == 4
        assert len(topo.switches(CORE)) == 2

    def test_default_is_paper_scale(self):
        params = ThreeTierParams()
        assert params.n_hosts == 1024
        assert params.n_tors == 64

    def test_host_edge_capacity(self):
        topo = three_tier(SMALL)
        link = topo.network.link("host:0->tor:0")
        assert link.capacity == SMALL.edge_rate

    def test_oversubscription_shapes_uplinks(self):
        params = SMALL.scaled(oversubscription=2.0)
        topo = three_tier(params)
        uplink = topo.network.link("tor:0->aggr:0:0")
        total_up = uplink.capacity * params.aggrs_per_pod
        total_down = params.hosts_per_tor * params.edge_rate
        assert total_down / total_up == pytest.approx(2.0)

    def test_full_bisection_at_one(self):
        params = SMALL.scaled(oversubscription=1.0)
        topo = three_tier(params)
        uplink = topo.network.link("tor:0->aggr:0:0")
        assert uplink.capacity * params.aggrs_per_pod == pytest.approx(
            params.hosts_per_tor * params.edge_rate
        )

    def test_rack_and_pod_attributes(self):
        topo = three_tier(SMALL)
        assert topo.rack_of("host:0") == 0
        assert topo.rack_of("host:4") == 1
        assert topo.pod_of("host:0") == 0
        assert topo.pod_of("host:8") == 1
        assert topo.tor_of("host:5") == "tor:1"

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            ThreeTierParams(n_pods=0)
        with pytest.raises(ValueError):
            ThreeTierParams(oversubscription=0.5)
        with pytest.raises(ValueError):
            ThreeTierParams(edge_rate=-1.0)


class TestPaths:
    def test_same_rack_single_path(self):
        topo = three_tier(SMALL)
        paths = topo.equal_cost_paths("host:0", "host:1")
        assert paths == (("host:0->tor:0", "tor:0->host:1"),)

    def test_same_pod_paths_via_each_aggr(self):
        topo = three_tier(SMALL)
        paths = topo.equal_cost_paths("host:0", "host:4")
        assert len(paths) == SMALL.aggrs_per_pod

    def test_cross_pod_path_count(self):
        topo = three_tier(SMALL)
        paths = topo.equal_cost_paths("host:0", "host:15")
        # aggrs_per_pod * n_cores * aggrs_per_pod lanes.
        assert len(paths) == 2 * 2 * 2
        assert all(len(p) == 6 for p in paths)

    def test_self_path_is_empty(self):
        topo = three_tier(SMALL)
        assert topo.equal_cost_paths("host:0", "host:0") == ((),)

    def test_paths_never_relay_through_hosts(self):
        topo = three_tier(SMALL)
        for path in topo.equal_cost_paths("host:0", "host:15"):
            for link in path[1:-1]:
                assert "host" not in link

    def test_unknown_endpoint_raises(self):
        topo = three_tier(SMALL)
        with pytest.raises(KeyError):
            topo.equal_cost_paths("host:0", "host:999")

    def test_ecmp_choice_is_deterministic(self):
        topo = three_tier(SMALL)
        router = EcmpRouter()
        paths = topo.equal_cost_paths("host:0", "host:15")
        assert router.choose(paths, "flow-1") == router.choose(paths, "flow-1")

    def test_ecmp_spreads_flows(self):
        topo = three_tier(SMALL)
        router = EcmpRouter()
        paths = topo.equal_cost_paths("host:0", "host:15")
        chosen = {router.choose(paths, f"flow-{i}") for i in range(64)}
        assert len(chosen) > 1


class TestAggBoxes:
    def test_attach_creates_links_and_proc(self):
        topo = three_tier(SMALL)
        (info,) = topo.attach_aggbox("tor:0", link_rate=Gbps(10),
                                     proc_rate=Gbps(9.2))
        assert topo.network.link(info.proc_link).virtual
        assert topo.network.link(info.uplink).capacity == Gbps(10)
        assert topo.boxes_at("tor:0") == [info]
        assert topo.box(info.box_id) == info

    def test_multiple_boxes_per_switch(self):
        topo = three_tier(SMALL)
        topo.attach_aggbox("tor:0", link_rate=1.0, proc_rate=1.0, count=2)
        topo.attach_aggbox("tor:0", link_rate=1.0, proc_rate=1.0, count=1)
        assert len(topo.boxes_at("tor:0")) == 3
        ids = {b.box_id for b in topo.boxes_at("tor:0")}
        assert len(ids) == 3

    def test_attach_to_host_rejected(self):
        topo = three_tier(SMALL)
        with pytest.raises(ValueError):
            topo.attach_aggbox("host:0", link_rate=1.0, proc_rate=1.0)

    def test_attach_everywhere(self):
        topo = three_tier(SMALL)
        attach_boxes_everywhere(topo)
        n_switches = 4 + 4 + 2
        assert len(topo.all_boxes()) == n_switches
        assert len(topo.switches_with_boxes()) == n_switches

    def test_path_to_box(self):
        topo = three_tier(SMALL)
        (info,) = topo.attach_aggbox("aggr:0:0", link_rate=1.0, proc_rate=1.0)
        paths = topo.equal_cost_paths("host:0", info.box_id)
        assert paths == ((
            "host:0->tor:0", "tor:0->aggr:0:0", f"aggr:0:0->{info.box_id}"
        ),)

    def test_boxes_never_relay(self):
        topo = three_tier(SMALL)
        attach_boxes_everywhere(topo)
        for path in topo.equal_cost_paths("host:0", "host:15"):
            assert not any("box" in link for link in path)


class TestFatTree:
    def test_k4_counts(self):
        topo = fat_tree(4)
        assert len(topo.hosts()) == 16
        assert len(topo.switches(TOR)) == 8
        assert len(topo.switches(AGGR)) == 8
        assert len(topo.switches(CORE)) == 4

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            fat_tree(3)

    def test_cross_pod_diversity(self):
        topo = fat_tree(4)
        paths = topo.equal_cost_paths("host:0", "host:15")
        assert len(paths) == 4  # (k/2)^2

    def test_full_bisection(self):
        # Every tier has equal aggregate capacity in a fat-tree.
        topo = fat_tree(4, link_rate=10.0)
        edge = sum(1 for l in topo.network.wire_links()
                   if l.link_id.startswith("host:"))
        core_in = sum(1 for l in topo.network.wire_links()
                      if l.dst.startswith("core:"))
        assert edge == core_in


class TestTopologyGuards:
    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node(Node("n", TOR))
        with pytest.raises(ValueError):
            topo.add_node(Node("n", TOR))

    def test_connect_unknown_node_rejected(self):
        topo = Topology()
        topo.add_node(Node("a", TOR))
        with pytest.raises(KeyError):
            topo.connect("a", "ghost", 1.0)

    def test_asymmetric_capacities(self):
        topo = Topology()
        topo.add_node(Node("a", TOR))
        topo.add_node(Node("b", TOR))
        topo.connect("a", "b", 5.0, capacity_ba=7.0)
        assert topo.network.link("a->b").capacity == 5.0
        assert topo.network.link("b->a").capacity == 7.0
