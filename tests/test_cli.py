"""Tests for the command-line interface."""

import pytest

from repro import cli


class TestResolve:
    def test_full_name(self):
        assert cli.resolve("fig08_output_ratio") == "fig08_output_ratio"

    def test_short_name(self):
        assert cli.resolve("fig08") == "fig08_output_ratio"
        assert cli.resolve("tab01") == "tab01_loc"

    def test_unknown_rejected(self):
        with pytest.raises(SystemExit):
            cli.resolve("fig99")

    def test_ambiguous_rejected(self):
        with pytest.raises(SystemExit):
            cli.resolve("fig1")  # fig10..fig19

    def test_registry_matches_modules(self):
        import importlib

        for name in cli.EXPERIMENTS:
            importlib.import_module(f"repro.experiments.{name}")


class TestCommands:
    def test_list(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig08_output_ratio" in out
        assert out.count("\n") == len(cli.EXPERIMENTS)

    def test_info(self, capsys):
        assert cli.main(["info"]) == 0
        out = capsys.readouterr().out
        assert "quick" in out and "paper" in out

    def test_run_quick_experiment(self, capsys):
        assert cli.main(["run", "fig09", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "netagg" in out
        assert "median_vs_rack" in out

    def test_run_unscaled_experiment(self, capsys):
        assert cli.main(["run", "tab01"]) == 0
        out = capsys.readouterr().out
        assert "application" in out

    def test_run_writes_file(self, tmp_path, capsys):
        target = tmp_path / "out.txt"
        assert cli.main(["run", "fig09", "--scale", "quick",
                         "--out", str(target)]) == 0
        assert "fig09" in target.read_text()

    def test_run_seed_changes_workload(self, capsys):
        cli.main(["run", "fig09", "--scale", "quick", "--seed", "1"])
        first = capsys.readouterr().out
        cli.main(["run", "fig09", "--scale", "quick", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            cli.main(["run", "nonsense"])

    def test_scaled_set_is_consistent(self):
        # Every scaled module must actually accept a scale kwarg.
        import importlib
        import inspect

        for name in cli.EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{name}")
            params = inspect.signature(module.run).parameters
            if name in cli._SCALED:
                assert "scale" in params, name
            else:
                assert "scale" not in params, name


class TestReplay:
    def test_replay_single_strategy(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        cli.main(["trace", "generate", "--scale", "quick",
                  "--out", str(out)])
        capsys.readouterr()
        assert cli.main(["replay", str(out), "--strategy", "netagg",
                         "--scale", "quick"]) == 0
        text = capsys.readouterr().out
        assert "netagg" in text and "slowdown" in text

    def test_replay_all_picks_a_winner(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        cli.main(["trace", "generate", "--scale", "quick",
                  "--out", str(out)])
        capsys.readouterr()
        assert cli.main(["replay", str(out), "--scale", "quick"]) == 0
        text = capsys.readouterr().out
        assert "best 99th-percentile FCT:" in text
        for name in ("none", "rack", "binary", "chain", "netagg"):
            assert name in text
