"""Tests for the command-line interface."""

import pytest

from repro import cli


class TestResolve:
    def test_full_name(self):
        assert cli.resolve("fig08_output_ratio") == "fig08_output_ratio"

    def test_short_name(self):
        assert cli.resolve("fig08") == "fig08_output_ratio"
        assert cli.resolve("tab01") == "tab01_loc"

    def test_unknown_rejected(self):
        with pytest.raises(SystemExit):
            cli.resolve("fig99")

    def test_ambiguous_rejected(self):
        with pytest.raises(SystemExit):
            cli.resolve("fig1")  # fig10..fig19

    def test_registry_matches_modules(self):
        from repro import experiments

        for name in cli.EXPERIMENTS:
            exp = experiments.load(name)
            assert exp.module == name
            assert exp.summary


class TestCommands:
    def test_list(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig08_output_ratio" in out
        assert out.count("\n") == len(cli.EXPERIMENTS)

    def test_info(self, capsys):
        assert cli.main(["info"]) == 0
        out = capsys.readouterr().out
        assert "quick" in out and "paper" in out

    def test_run_quick_experiment(self, capsys):
        assert cli.main(["run", "fig09", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "netagg" in out
        assert "median_vs_rack" in out

    def test_run_unscaled_experiment(self, capsys):
        assert cli.main(["run", "tab01"]) == 0
        out = capsys.readouterr().out
        assert "application" in out

    def test_run_writes_file(self, tmp_path, capsys):
        target = tmp_path / "out.txt"
        assert cli.main(["run", "fig09", "--scale", "quick",
                         "--out", str(target)]) == 0
        assert "fig09" in target.read_text()

    def test_run_seed_changes_workload(self, capsys):
        cli.main(["run", "fig09", "--scale", "quick", "--seed", "1"])
        first = capsys.readouterr().out
        cli.main(["run", "fig09", "--scale", "quick", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            cli.main(["run", "nonsense"])

    def test_run_writes_json(self, tmp_path, capsys):
        import json

        from repro.experiments import ExperimentResult

        target = tmp_path / "results.json"
        assert cli.main(["run", "fig09", "--scale", "quick",
                         "--out", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert isinstance(payload, list) and len(payload) == 1
        result = ExperimentResult.from_dict(payload[0])
        assert result.experiment == "fig09"
        assert result.rows
        # Round-trips through the JSON helpers.
        again = ExperimentResult.from_json(result.to_json())
        assert again.rows == result.rows

    def test_every_experiment_has_canonical_signature(self):
        # The whole catalogue accepts run(scale=..., seed=...).
        import inspect

        from repro import experiments

        for exp in experiments.all_experiments():
            params = inspect.signature(exp.run).parameters
            assert "scale" in params, exp.module
            assert "seed" in params, exp.module


class TestBench:
    def test_bench_writes_json(self, tmp_path, capsys):
        import json

        target = tmp_path / "bench.json"
        assert cli.main(["bench", "--scale", "quick",
                         "--only", "fig09", "tab01",
                         "--out", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["schema"] == 1
        assert payload["baseline"]["fig06_default_seconds"] > 0
        assert payload["fig06_speedup"] > 0
        by_name = {r["experiment"]: r for r in payload["results"]}
        assert set(by_name) == {"fig09_link_traffic", "tab01_loc"}
        fig09 = by_name["fig09_link_traffic"]
        assert fig09["ok"] and fig09["seconds"] >= 0
        assert fig09["events"] > 0 and fig09["solver_calls"] > 0
        assert fig09["peak_rss_kb"] > 0

    def test_bench_reports_failures(self, tmp_path, monkeypatch, capsys):
        from repro import bench

        def boom(name, scale, seed=1):
            return {"experiment": name, "scale": scale.name,
                    "ok": False, "error": "RuntimeError: boom"}

        monkeypatch.setattr(bench, "time_experiment", boom)
        target = tmp_path / "bench.json"
        assert bench.run_bench(scale_name="quick", out=str(target),
                               names=["fig09"]) == 1


class TestReplay:
    def test_replay_single_strategy(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        cli.main(["trace", "generate", "--scale", "quick",
                  "--out", str(out)])
        capsys.readouterr()
        assert cli.main(["replay", str(out), "--strategy", "netagg",
                         "--scale", "quick"]) == 0
        text = capsys.readouterr().out
        assert "netagg" in text and "slowdown" in text

    def test_replay_all_picks_a_winner(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        cli.main(["trace", "generate", "--scale", "quick",
                  "--out", str(out)])
        capsys.readouterr()
        assert cli.main(["replay", str(out), "--scale", "quick"]) == 0
        text = capsys.readouterr().out
        assert "best 99th-percentile FCT:" in text
        for name in ("none", "rack", "binary", "chain", "netagg"):
            assert name in text


class TestUniformContract:
    """Every workload subcommand shares the --scale/--seed/--out trio."""

    SUBCOMMANDS = ("run", "bench", "trace", "analyze", "serve", "loadgen")

    def test_all_subcommands_accept_the_trio(self):
        parser = cli.build_parser()
        sub_actions = next(
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0])))
        for name in self.SUBCOMMANDS:
            command = sub_actions.choices[name]
            flags = {flag for action in command._actions
                     for flag in action.option_strings}
            for flag in ("--scale", "--seed", "--out"):
                assert flag in flags, f"{name} is missing {flag}"

    def test_out_extension_infers_format(self, tmp_path):
        from repro.experiments import ExperimentResult

        result = ExperimentResult(experiment="x", description="d",
                                  columns=("a",))
        result.add_row(a=1)
        as_json = tmp_path / "r.json"
        as_text = tmp_path / "r.txt"
        cli.write_result(result, str(as_json), announce=False)
        cli.write_result(result, str(as_text), announce=False)
        import json

        assert json.loads(as_json.read_text())["experiment"] == "x"
        assert "== x:" in as_text.read_text()

    def test_analyze_out_infers_text(self, tmp_path, capsys):
        target = tmp_path / "diagnosis.txt"
        assert cli.main(["analyze", "--run", "fig09", "--scale", "quick",
                         "--out", str(target)]) == 0
        capsys.readouterr()
        assert "== analyze:" in target.read_text()


class TestLoadgen:
    def test_loadgen_reports_per_tenant_goodput(self, capsys):
        assert cli.main(["loadgen", "--users", "5000", "--duration", "2",
                         "--scale", "quick", "--seed", "7"]) == 0
        captured = capsys.readouterr()
        assert "slo_attainment" in captured.out
        assert "ALL" in captured.out
        assert "0 accounting errors" in captured.err

    def test_loadgen_accepts_scientific_users(self, capsys):
        assert cli.main(["loadgen", "--users", "1e3", "--duration", "1",
                         "--scale", "quick"]) == 0
        assert "1,000 users" in capsys.readouterr().err

    def test_loadgen_deterministic_replay(self, capsys):
        args = ["loadgen", "--users", "5000", "--duration", "2",
                "--scale", "quick", "--seed", "11"]
        cli.main(args)
        first = capsys.readouterr().out
        cli.main(args)
        second = capsys.readouterr().out
        assert first == second

    def test_loadgen_writes_json(self, tmp_path, capsys):
        import json

        target = tmp_path / "load.json"
        assert cli.main(["loadgen", "--users", "2000", "--duration", "1",
                         "--scale", "quick", "--out", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["experiment"] == "loadgen"
        assert payload["rows"]


class TestUnknownExperimentMessages:
    def test_resolve_error_lists_registry(self):
        with pytest.raises(SystemExit) as err:
            cli.resolve("fig99")
        message = str(err.value)
        assert "unknown experiment 'fig99'" in message
        assert "registered experiments" in message
        assert "fig_overload" in message
        assert "fig08_output_ratio" in message

    def test_bench_only_unknown_lists_registry(self):
        from repro.bench import bench_targets

        with pytest.raises(SystemExit) as err:
            bench_targets(["nope"])
        message = str(err.value)
        assert "unknown experiment 'nope'" in message
        assert "fig_overload" in message

    def test_bench_only_known_names_resolve(self):
        from repro.bench import bench_targets

        assert bench_targets(["fig08", "fig_overload"]) == [
            "fig08_output_ratio", "fig_overload"]
