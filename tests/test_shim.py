"""Tests for worker and master shim layers."""

import pytest

from repro.aggregation import deploy_boxes
from repro.core.shim import MasterShim, WorkerShim
from repro.core.tree import TreeBuilder
from repro.topology import ThreeTierParams, three_tier

SMALL = ThreeTierParams(
    n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2, hosts_per_tor=4
)
WORKERS = ["host:4", "host:8", "host:12"]


def make_trees(n_trees=2, with_boxes=True):
    topo = three_tier(SMALL)
    if with_boxes:
        deploy_boxes(topo)
    return TreeBuilder(topo).build_many("req", "host:0", WORKERS, n_trees)


class TestWorkerShim:
    def test_redirect_deterministic(self):
        trees = make_trees()
        shim = WorkerShim("host:4", 0, trees)
        assert shim.redirect_for("key-1") == shim.redirect_for("key-1")

    def test_redirect_spreads_over_trees(self):
        trees = make_trees(n_trees=2)
        shim = WorkerShim("host:4", 0, trees)
        indices = {shim.redirect_for(f"key-{i}").tree_index
                   for i in range(32)}
        assert indices == {0, 1}

    def test_redirect_without_boxes_is_passthrough(self):
        trees = make_trees(with_boxes=False)
        shim = WorkerShim("host:4", 0, trees)
        assert shim.redirect_for("key").box_id is None

    def test_split_partitions_all_items(self):
        trees = make_trees(n_trees=3)
        shim = WorkerShim("host:4", 0, trees)
        items = [(f"k{i}", i) for i in range(50)]
        parts = shim.split(items)
        assert sorted(v for part in parts.values() for v in part) == \
            list(range(50))
        assert len(parts) == 3

    def test_split_same_key_same_tree(self):
        trees = make_trees(n_trees=3)
        shim = WorkerShim("host:4", 0, trees)
        parts = shim.split([("k", 1), ("k", 2)])
        non_empty = [i for i, part in parts.items() if part]
        assert len(non_empty) == 1

    def test_requires_trees(self):
        with pytest.raises(ValueError):
            WorkerShim("host:4", 0, [])

    def test_worker_must_be_in_trees(self):
        trees = make_trees()
        with pytest.raises(ValueError):
            WorkerShim("host:4", 99, trees)


class TestMasterShim:
    def test_expected_counts_exclude_direct_workers(self):
        trees = make_trees(n_trees=1, with_boxes=False)
        shim = MasterShim("host:0")
        expected = shim.intercept_request("r1", trees)
        assert expected == {0: 0}  # everything direct, boxes expect nothing

    def test_expected_counts_with_boxes(self):
        trees = make_trees(n_trees=1)
        shim = MasterShim("host:0")
        expected = shim.intercept_request("r1", trees)
        assert expected == {0: len(WORKERS)}

    def test_duplicate_request_rejected(self):
        trees = make_trees()
        shim = MasterShim("host:0")
        shim.intercept_request("r1", trees)
        with pytest.raises(ValueError):
            shim.intercept_request("r1", trees)

    def test_completion_requires_all_trees(self):
        trees = make_trees(n_trees=2)
        shim = MasterShim("host:0")
        shim.intercept_request("r1", trees)
        shim.deliver_aggregate("r1", 0, [1])
        assert not shim.is_complete("r1")
        shim.deliver_aggregate("r1", 1, [2])
        assert shim.is_complete("r1")

    def test_duplicate_aggregate_rejected(self):
        trees = make_trees(n_trees=1)
        shim = MasterShim("host:0")
        shim.intercept_request("r1", trees)
        shim.deliver_aggregate("r1", 0, [1])
        with pytest.raises(ValueError):
            shim.deliver_aggregate("r1", 0, [1])

    def test_empty_result_emulation(self):
        """All data on worker 0; others get empty responses (§3.2.2)."""
        trees = make_trees(n_trees=1)
        shim = MasterShim("host:0")
        shim.intercept_request("r1", trees)
        shim.deliver_aggregate("r1", 0, [42])
        responses = shim.emulate_worker_responses("r1")
        assert responses[0] == (0, [42])
        assert all(value is None for _, value in responses[1:])
        assert len(responses) == len(WORKERS)

    def test_multiple_trees_need_merge(self):
        trees = make_trees(n_trees=2)
        shim = MasterShim("host:0")
        shim.intercept_request("r1", trees)
        shim.deliver_aggregate("r1", 0, [1])
        shim.deliver_aggregate("r1", 1, [2])
        with pytest.raises(ValueError):
            shim.emulate_worker_responses("r1")
        responses = shim.emulate_worker_responses(
            "r1", merge=lambda parts: [x for p in parts for x in p]
        )
        assert responses[0][1] == [1, 2]

    def test_incomplete_request_raises(self):
        trees = make_trees(n_trees=1)
        shim = MasterShim("host:0")
        shim.intercept_request("r1", trees)
        with pytest.raises(RuntimeError):
            shim.emulate_worker_responses("r1")
        assert shim.pending_requests() == ["r1"]

    def test_unknown_request_raises(self):
        shim = MasterShim("host:0")
        with pytest.raises(KeyError):
            shim.is_complete("ghost")
