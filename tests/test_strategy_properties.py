"""Property-based invariants over all aggregation strategies.

For random jobs on random (small) topologies, every strategy must:

- put each worker's raw partial result on the wire exactly once per
  aggregation tree (conservation at the leaves);
- never let an aggregation point forward more bytes than it received
  plus its local data;
- bound every aggregate by the job's dictionary (alpha * total);
- produce flow plans the simulator can run to completion, with job
  completion no earlier than the slowest worker's ideal transfer.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation import (
    BinaryTreeStrategy,
    ChainStrategy,
    NetAggStrategy,
    NoAggregationStrategy,
    RackLevelStrategy,
    deploy_boxes,
)
from repro.netsim import FlowSim
from repro.netsim.routing import EcmpRouter
from repro.topology import ThreeTierParams, three_tier
from repro.units import MB
from repro.workload import AggJob

STRATEGIES = [
    NoAggregationStrategy(),
    RackLevelStrategy(),
    BinaryTreeStrategy(),
    ChainStrategy(),
    NetAggStrategy(),
]

TOPO_PARAMS = ThreeTierParams(
    n_pods=2, tors_per_pod=2, aggrs_per_pod=2, n_cores=2, hosts_per_tor=4
)
N_HOSTS = TOPO_PARAMS.n_hosts


@st.composite
def random_job(draw):
    n_workers = draw(st.integers(1, 8))
    hosts = draw(st.lists(
        st.integers(0, N_HOSTS - 1), min_size=n_workers + 1,
        max_size=n_workers + 1, unique=True,
    ))
    master, worker_hosts = hosts[0], hosts[1:]
    sizes = draw(st.lists(
        st.floats(0.1 * MB, 5 * MB), min_size=n_workers,
        max_size=n_workers,
    ))
    alpha = draw(st.sampled_from([0.05, 0.1, 0.3, 0.7, 1.0]))
    n_trees = draw(st.integers(1, 2))
    return AggJob(
        "j",
        f"host:{master}",
        tuple((f"host:{h}", s) for h, s in zip(worker_hosts, sizes)),
        alpha=alpha,
        n_trees=n_trees,
    )


def make_topo():
    topo = three_tier(TOPO_PARAMS)
    deploy_boxes(topo)
    return topo


def plan(strategy, job, topo):
    return strategy.plan_job(job, topo, EcmpRouter())


class TestStrategyInvariants:
    @pytest.mark.parametrize("strategy", STRATEGIES,
                             ids=lambda s: s.name)
    @given(job=random_job())
    @settings(max_examples=30, deadline=None)
    def test_worker_bytes_on_wire_once(self, strategy, job):
        topo = make_topo()
        specs = plan(strategy, job, topo)
        worker_bytes = sum(
            s.size for s in specs if s.kind == "worker"
            and not s.children
        )
        # Leaf flows carry raw partial results; NetAgg splits them over
        # trees but totals must be preserved.  Edge strategies designate
        # some workers as aggregators whose data never crosses the wire.
        assert worker_bytes <= job.total_bytes + 1e-6

    @pytest.mark.parametrize("strategy", STRATEGIES,
                             ids=lambda s: s.name)
    @given(job=random_job())
    @settings(max_examples=30, deadline=None)
    def test_aggregates_bounded_by_dictionary(self, strategy, job):
        topo = make_topo()
        specs = plan(strategy, job, topo)
        dictionary = job.alpha * job.total_bytes
        for spec in specs:
            if spec.kind in ("internal", "result") and spec.children:
                assert spec.size <= dictionary * (1 + 1e-9) + 1e-9 or \
                    spec.size <= job.total_bytes + 1e-6

    @pytest.mark.parametrize("strategy", STRATEGIES,
                             ids=lambda s: s.name)
    @given(job=random_job())
    @settings(max_examples=20, deadline=None)
    def test_plans_simulate_to_completion(self, strategy, job):
        topo = make_topo()
        specs = plan(strategy, job, topo)
        sim = FlowSim(topo.network)
        sim.add_flows(specs)
        result = sim.run()
        assert len(result.records) == len(specs)
        assert all(math.isfinite(r.fct) and r.fct >= 0
                   for r in result.records.values())

    @pytest.mark.parametrize("strategy", STRATEGIES,
                             ids=lambda s: s.name)
    @given(job=random_job())
    @settings(max_examples=20, deadline=None)
    def test_job_completion_at_least_ideal(self, strategy, job):
        """No strategy can beat the slowest worker's solo transfer of
        its own raw data over its 1 Gbps edge link."""
        topo = make_topo()
        specs = plan(strategy, job, topo)
        sim = FlowSim(topo.network)
        sim.add_flows(specs)
        result = sim.run()
        completion = result.job_completion_times()["j"]
        edge = TOPO_PARAMS.edge_rate
        slowest_leaf = max(
            (s.size for s in specs if not s.children and s.path),
            default=0.0,
        )
        assert completion >= slowest_leaf / edge - 1e-9

    @pytest.mark.parametrize("strategy", STRATEGIES,
                             ids=lambda s: s.name)
    @given(job=random_job())
    @settings(max_examples=20, deadline=None)
    def test_flow_ids_unique(self, strategy, job):
        topo = make_topo()
        specs = plan(strategy, job, topo)
        ids = [s.flow_id for s in specs]
        assert len(ids) == len(set(ids))

    @given(job=random_job())
    @settings(max_examples=20, deadline=None)
    def test_netagg_dependencies_acyclic_and_internal(self, job):
        topo = make_topo()
        specs = plan(NetAggStrategy(), job, topo)
        by_id = {s.flow_id: s for s in specs}
        for spec in specs:
            for child in spec.children:
                assert child in by_id

        state = {}

        def visit(fid):
            if state.get(fid) == 1:
                return
            assert state.get(fid) != 0, "cycle!"
            state[fid] = 0
            for child in by_id[fid].children:
                visit(child)
            state[fid] = 1

        for fid in by_id:
            visit(fid)
