"""Legacy setup shim.

The execution environment is offline and has no `wheel` package, so PEP
660 editable installs (which shell out to bdist_wheel) fail.  This shim
lets ``pip install -e . --no-build-isolation`` fall back to the classic
``setup.py develop`` path.  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
